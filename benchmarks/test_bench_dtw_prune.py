"""Benchmark gate for the pruned DTW 1-NN backend.

The paper's Table 1 yardstick is 1-NN on a GunPoint-scale split; the
UCR-suite observation (Rakthanmanon et al., KDD 2013) is that most candidate
pairs of such a search never need the quadratic dynamic program -- a
constant-time endpoint bound (LB_Kim), an envelope bound (LB_Keogh) and
running-best early abandoning answer them first.  This gate times exactly
that claim on our own kernels: the ``"pruned"`` backend against the dense
anti-diagonal wavefront it replaces, on a z-normalised Table-1-scale DTW
1-NN evaluation with a 10% band.

Equivalence comes first, speed second: the pruned search must return
*bit-identical* neighbour indices, distances and predicted labels before its
>= 5x wall-clock win counts, and the reported pruning rate (the fraction of
pairs answered without the DP) must show the cascade is actually doing the
work rather than the chunking.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.gunpoint import GunPointGenerator
from repro.distance.backends import pruned_dtw_nearest_neighbors
from repro.distance.engine import _stable_k_smallest, dtw_pairwise_distances
from repro.distance.znorm import znormalize

REQUIRED_SPEEDUP = 5.0

#: The cascade must answer at least this fraction of the candidate pairs
#: before the dynamic program (measured ~0.6 on this split).
REQUIRED_PRUNING_RATE = 0.25

#: Table 1 scale: 25 train / 75 test exemplars per class, length 150.
TRAIN_PER_CLASS = 25
TEST_PER_CLASS = 75
LENGTH = 150
WINDOW = 0.1


def _best_of(function, repeats: int = 3):
    """Smallest wall-clock time over ``repeats`` runs (robust to CI jitter)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_pruned_dtw_nn_speedup(run_once, bench_metrics):
    """Cascading lower bounds vs the dense wavefront on Table-1-scale DTW 1-NN."""
    generator = GunPointGenerator(length=LENGTH, seed=7)
    train = generator.generate(n_per_class=TRAIN_PER_CLASS, seed=7)
    test = generator.generate(n_per_class=TEST_PER_CLASS, seed=11)
    train_series = znormalize(train.series)
    test_series = znormalize(test.series)

    def dense_search():
        distances = dtw_pairwise_distances(test_series, train_series, window=WINDOW)
        return _stable_k_smallest(distances, 1)

    def pruned_search():
        return pruned_dtw_nearest_neighbors(
            test_series, train_series, window=WINDOW, return_stats=True
        )

    dense_seconds, (dense_idx, dense_dist) = _best_of(dense_search, repeats=2)
    pruned_seconds, (pruned_idx, pruned_dist, stats) = _best_of(pruned_search)
    run_once(pruned_search)

    # Bit-exactness first: identical neighbour indices, identical distances,
    # and therefore identical predicted labels.
    np.testing.assert_array_equal(pruned_idx, dense_idx)
    np.testing.assert_array_equal(pruned_dist, dense_dist)
    np.testing.assert_array_equal(
        train.labels[pruned_idx[:, 0]], train.labels[dense_idx[:, 0]]
    )

    assert stats.n_pairs == test_series.shape[0] * train_series.shape[0]
    assert stats.pruning_rate >= REQUIRED_PRUNING_RATE, (
        f"lower-bound cascade only answered {stats.pruning_rate:.0%} of "
        f"{stats.n_pairs} pairs before the DP "
        f"(LB_Kim {stats.lb_kim_pruned}, LB_Keogh {stats.lb_keogh_pruned}, "
        f"abandoned {stats.dp_abandoned} of {stats.dp_computed} DPs)"
    )

    speedup = dense_seconds / pruned_seconds
    bench_metrics.update(
        speedup=speedup,
        dense_seconds=dense_seconds,
        pruned_seconds=pruned_seconds,
        pruning_rate=stats.pruning_rate,
        n_pairs=stats.n_pairs,
        backend=stats.backend,
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP:.0f}x on a "
        f"{test_series.shape[0]}x{train_series.shape[0]} length-{LENGTH} "
        f"DTW 1-NN evaluation with a {WINDOW:.0%} band, measured "
        f"{speedup:.1f}x (dense {dense_seconds * 1e3:.0f} ms, pruned "
        f"{pruned_seconds * 1e3:.0f} ms, pruning rate "
        f"{stats.pruning_rate:.0%})"
    )
