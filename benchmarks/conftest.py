"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation of a design choice called out in DESIGN.md).  The functions being
timed are full experiments, not micro-kernels, so each benchmark runs a single
round -- the value of the harness is (a) a one-command regeneration of every
artefact and (b) a stable record of how long each one takes.

Point (b) is made durable by ``tools/bench_record.py``: the hooks below give
every ``test_bench_<name>.py`` module a machine-readable
``results/bench/BENCH_<name>.json`` record (per-test outcomes and wall-clock
durations, plus whatever a benchmark reports through the ``bench_metrics``
fixture -- speedups, component timings, pruning rates).  The records carry the
git SHA and the resolved distance backend, so runs are comparable across
commits and across the interpreted/compiled tiers.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_TOOLS_DIR = Path(__file__).resolve().parent.parent / "tools"
if str(_TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(_TOOLS_DIR))

from bench_record import BenchRecorder  # noqa: E402

_RECORDER = BenchRecorder()

_MODULE_PREFIX = "test_bench_"


def _bench_name(node) -> str | None:
    """The record name for a test item, or ``None`` for non-benchmark files."""
    stem = Path(str(node.fspath)).stem
    if stem.startswith(_MODULE_PREFIX):
        return stem[len(_MODULE_PREFIX) :]
    return None


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer and return its result."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def bench_metrics(request):
    """A dict a benchmark fills with metrics bound for its ``BENCH_*.json``.

    Whatever is in the dict at teardown is merged into the test's entry, so
    metrics recorded before a ``pytest.skip`` (e.g. the measured fallback
    timings of a compiled benchmark running without numba) still land in the
    record.
    """
    metrics: dict = {}
    yield metrics
    name = _bench_name(request.node)
    if name is not None and metrics:
        _RECORDER.record_metrics(name, request.node.name, dict(metrics))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    name = _bench_name(item)
    if name is None:
        return
    # The call phase carries the real duration; a setup-phase skip (marker or
    # fixture) is the only way a benchmark ends without a call phase at all.
    if report.when == "call" or (report.when == "setup" and report.skipped):
        _RECORDER.record_test(name, item.name, report.outcome, report.duration)


def pytest_sessionfinish(session, exitstatus):
    _RECORDER.write()
