"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation of a design choice called out in DESIGN.md).  The functions being
timed are full experiments, not micro-kernels, so each benchmark runs a single
round -- the value of the harness is (a) a one-command regeneration of every
artefact and (b) a stable record of how long each one takes.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer and return its result."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
