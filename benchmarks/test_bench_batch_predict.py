"""Benchmark for the batched test-set-at-once prediction engine.

Every headline number of the paper (Table 1, Figures 6-9) is a full test set
driven through an early classifier.  The seed behaviour fed exemplars one at
a time through ``predict_early``; ``predict_early_batch`` answers the whole
test set from one :func:`repro.distance.engine.batch_prefix_distances` pass
plus vectorised per-checkpoint statistics.  This benchmark times a Table 1
style evaluation (ECTS, the table's lead algorithm, on a GunPoint-like
split) both ways and asserts the batched path is at least 5x faster while
reproducing the per-row metrics exactly.
"""

from __future__ import annotations

import time

from repro.classifiers.ects import ECTSClassifier
from repro.data.gunpoint import GunPointGenerator
from repro.evaluation.earliness import evaluate_early_classifier

N_PER_CLASS = 90
LENGTH = 150
REQUIRED_SPEEDUP = 5.0


def _make_split():
    full = GunPointGenerator(length=LENGTH, seed=7).generate(
        n_per_class=N_PER_CLASS, seed=7
    )
    indices = range(2 * N_PER_CLASS)
    train = full.subset([i for i in indices if i % 6 == 0])  # 30 exemplars
    test = full.subset([i for i in indices if i % 6 != 0])  # 150 exemplars
    return train, test


def _best_of(function, repeats: int = 3):
    """Smallest wall-clock time over ``repeats`` runs (robust to CI jitter)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_batch_predict_speedup(run_once):
    train, test = _make_split()
    model = ECTSClassifier(min_support=0.0).fit(train.series, train.labels)

    perrow_seconds, perrow = _best_of(
        lambda: evaluate_early_classifier(model, test.series, test.labels, batch=False)
    )
    batch_seconds, batched = _best_of(
        lambda: evaluate_early_classifier(model, test.series, test.labels, batch=True)
    )
    # Record the batched evaluation under the benchmark timer for the log.
    run_once(evaluate_early_classifier, model, test.series, test.labels)

    # Same answer: the equivalence suite pins per-outcome agreement; here the
    # aggregate metrics must be exactly equal, or the speedup is meaningless.
    assert batched == perrow

    speedup = perrow_seconds / batch_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP:.0f}x speedup on the "
        f"{test.series.shape[0]}-exemplar Table 1 style evaluation, measured "
        f"{speedup:.1f}x (per-row {perrow_seconds * 1e3:.1f} ms, "
        f"batched {batch_seconds * 1e3:.1f} ms)"
    )
