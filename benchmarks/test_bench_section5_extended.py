"""Benchmarks for the Section 5 padding experiment and the extended Table 1."""

from repro.classifiers import CostAwareEarlyClassifier, ECDIREClassifier, TEASERClassifier
from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.experiments import section5_padding, table1


def test_bench_section5_padding(run_once):
    """Section 5: how much apparent earliness is the right-padding convention."""
    result = run_once(section5_padding.run)
    for comparison in result.comparisons:
        assert comparison.padding_share_of_savings >= 0.2
        assert comparison.padded.accuracy >= 0.8


def test_bench_table1_extended_algorithms(run_once):
    """Table 1 protocol applied to the additional stopping rules in the library.

    TEASER, ECDIRE, the cost-aware rule and the plain probability threshold
    are not rows of the paper's Table 1, but they are part of the literature
    it critiques; the audit shows the same qualitative sensitivity.
    """
    result = run_once(
        table1.run,
        algorithms={
            "TEASER": lambda: TEASERClassifier(),
            "ECDIRE": lambda: ECDIREClassifier(),
            "Cost-aware": lambda: CostAwareEarlyClassifier(),
            "Threshold 0.8": lambda: ProbabilityThresholdClassifier(
                threshold=0.8, min_length=10, checkpoint_step=5
            ),
        },
    )
    assert len(result.audits) == 4
    for audit in result.audits:
        assert audit.normalized.accuracy >= 0.7, audit.algorithm
        assert audit.denormalized.accuracy <= audit.normalized.accuracy, audit.algorithm
