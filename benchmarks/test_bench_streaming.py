"""Throughput benchmark: offline reference loop vs. the online engine.

An Appendix-B-shaped deployment -- GunPoint-length (150-sample) candidate
windows sliding over a long smoothed-random-walk stream with genuine
exemplars embedded, causal normalisation (the only honest mode a live system
has) and an engine-backed ECTS classifier.  The offline reference
re-normalises every window with an ``O(L^2)`` Python loop and re-runs
``predict_early`` from scratch per candidate; the online engine advances all
overlapping candidates incrementally with O(1)-per-sample running
statistics.  The reference is timed on a slice of the stream (it is the slow
side by construction), the engine on the full 100k-sample stream, and the
speedup is asserted on the samples/second throughput.
"""

from __future__ import annotations

import time

import numpy as np

from repro.classifiers.ects import ECTSClassifier
from repro.data.gunpoint import make_gunpoint_dataset
from repro.data.random_walk import random_walk_background
from repro.data.stream import StreamComposer
from repro.streaming.detector import StreamingEarlyDetector

STREAM_SAMPLES = 100_000
REFERENCE_SAMPLES = 10_000
STRIDE = 50
REQUIRED_SPEEDUP = 5.0


def _make_deployment():
    train, test = make_gunpoint_dataset(seed=7)
    labels = np.asarray(train.labels)
    picks = np.concatenate(
        [np.flatnonzero(labels == cls)[:10] for cls in train.classes]
    )
    # Snapshot-style checkpoint cadence (one evaluation every 10 samples, ~15
    # per window -- the TEASER-like deployment configuration); the per-
    # checkpoint classifier work is identical on both sides by equivalence,
    # so the measured gap is the engine's genuine orchestration win.
    classifier = ECTSClassifier(checkpoint_step=10).fit(train.series[picks], labels[picks])
    composer = StreamComposer(
        background=random_walk_background(smoothing=16, step_scale=0.3),
        gap_range=(2_000, 6_000),
        level_match=True,
        seed=17,
    )
    exemplars = test.exemplars_of_class(test.classes[0])
    n_events = max(STREAM_SAMPLES // 4_000, 1)
    stream = composer.compose(
        [exemplars[i % exemplars.shape[0]] for i in range(n_events)],
        [test.classes[0]] * n_events,
        name="bench-streaming",
    )
    values = stream.values
    if values.shape[0] < STREAM_SAMPLES:
        values = np.tile(values, STREAM_SAMPLES // values.shape[0] + 1)
    values = values[:STREAM_SAMPLES]
    detector = StreamingEarlyDetector(
        classifier, stride=STRIDE, normalization="causal", max_alarms=1_000_000
    )
    return detector, values


def test_bench_streaming_engine_speedup(run_once):
    detector, values = _make_deployment()
    reference_slice = values[:REFERENCE_SAMPLES]

    started = time.perf_counter()
    reference_alarms = detector.detect_reference(reference_slice)
    reference_seconds = time.perf_counter() - started

    # Best of two engine passes: guards the timing assertion against a
    # one-off scheduler hiccup on the fast side (noise on the slow reference
    # side only widens the measured gap).  The second pass doubles as the
    # recorded harness-log entry, so no extra pass is spent on book-keeping.
    started = time.perf_counter()
    engine_alarms = detector.detect(values)
    engine_seconds = time.perf_counter() - started
    started = time.perf_counter()
    run_once(detector.detect, values)
    engine_seconds = min(engine_seconds, time.perf_counter() - started)

    # Sanity: on the shared slice the engine reproduces the reference alarms
    # (the dedicated equivalence suite pins this field by field).
    engine_slice_alarms = detector.detect(reference_slice)
    assert [a.position for a in engine_slice_alarms] == [a.position for a in reference_alarms]
    assert [a.label for a in engine_slice_alarms] == [a.label for a in reference_alarms]
    assert len(engine_alarms) >= len(reference_alarms)

    reference_sps = REFERENCE_SAMPLES / reference_seconds
    engine_sps = STREAM_SAMPLES / engine_seconds
    speedup = engine_sps / reference_sps
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP:.0f}x streaming throughput, measured "
        f"{speedup:.1f}x (reference {reference_sps:,.0f} samples/s over "
        f"{REFERENCE_SAMPLES:,} samples, engine {engine_sps:,.0f} samples/s "
        f"over {STREAM_SAMPLES:,} samples)"
    )
