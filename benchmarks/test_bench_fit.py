"""Benchmarks for the vectorised training engine (fit-side kernels).

PR 4 made *prediction* test-set-at-once; these benchmarks gate the same
treatment of *training*.  Three hot paths were rewritten as array kernels,
each keeping its original Python-loop implementation as the semantic
reference:

* **ECTS** -- MPLs and supports from a ``(n_lengths, n)`` nearest-index
  matrix (dense cumulative-sum pass or copy-free incremental sweep) instead
  of per-length frozenset RNN structures and an O(n * L) per-exemplar walk.
  The gate times a full ``checkpoint_step=1`` fit in the per-tenant refit
  regime the training engine is motivated by (small fresh training sets,
  long series, a checkpoint at every sample).
* **EDSC** -- candidate extraction via ``sliding_window_view`` and threshold
  learning / scoring batched across the whole ``(n_candidates, n_series)``
  best-match distance matrix.  The gate times the candidate-mining stage
  (the per-candidate Python loop that was replaced) at Table 1 scale with
  the shared best-match kernel factored out; the full fit is additionally
  asserted to reproduce the reference shapelets exactly and not to regress.
  (The full fit improves ~1.3x, not 5x: its wall clock is dominated by the
  best-match GEMM kernel, which was already vectorised and is shared by
  both paths bit for bit.)
* **DTW** -- the anti-diagonal wavefront DP and its batched
  ``dtw_pairwise_distances`` entry point against the scalar per-pair
  recurrence.

Every comparison asserts output equivalence (exact for MPLs/supports and
shapelet selection, <= 1e-10 for DTW) before asserting speed: a fast kernel
that drifts is a failure, not a win.
"""

from __future__ import annotations

import time

import numpy as np

from repro.classifiers.ects import ECTSClassifier
from repro.classifiers.edsc import EDSCClassifier, _best_match_distances
from repro.data.gunpoint import GunPointGenerator
from repro.distance.dtw import _accumulated_cost_reference, _resolve_band
from repro.distance.engine import dtw_pairwise_distances

REQUIRED_SPEEDUP = 5.0

#: The per-tenant refit shape of the ECTS gate: a small fresh training set
#: with long exemplars and a checkpoint at every sample.
ECTS_N_PER_CLASS = 10
ECTS_LENGTH = 300

#: Table 1 scale (the paper's GunPoint split): 25 train exemplars per class,
#: length 150.
TABLE1_N_PER_CLASS = 25
TABLE1_LENGTH = 150


def _gunpoint(n_per_class: int, length: int):
    return GunPointGenerator(length=length, seed=7).generate(
        n_per_class=n_per_class, seed=7
    )


def _best_of(function, repeats: int = 3):
    """Smallest wall-clock time over ``repeats`` runs (robust to CI jitter)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_ects_fit_speedup(run_once):
    """Full ECTS ``checkpoint_step=1`` fit: vectorised kernels vs the reference loops."""
    train = _gunpoint(ECTS_N_PER_CLASS, ECTS_LENGTH)

    ref_seconds, reference = _best_of(
        lambda: ECTSClassifier(checkpoint_step=1)._fit_reference(
            train.series, train.labels
        ),
        repeats=5,
    )
    new_seconds, fitted = _best_of(
        lambda: ECTSClassifier(checkpoint_step=1).fit(train.series, train.labels),
        repeats=5,
    )
    run_once(
        lambda: ECTSClassifier(checkpoint_step=1).fit(train.series, train.labels)
    )

    # Exact equivalence first: integer MPLs and supports must match the
    # frozenset-and-loop reference bit for bit.
    assert np.array_equal(fitted.mpl_, reference.mpl_)
    assert np.array_equal(fitted.support_, reference.support_)

    speedup = ref_seconds / new_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP:.0f}x on a "
        f"{train.series.shape[0]}-exemplar length-{ECTS_LENGTH} "
        f"checkpoint_step=1 ECTS fit, measured {speedup:.1f}x "
        f"(reference {ref_seconds * 1e3:.1f} ms, vectorised "
        f"{new_seconds * 1e3:.1f} ms)"
    )


def _shapelet_key(shapelet):
    return (
        shapelet.label,
        shapelet.threshold,
        shapelet.utility,
        shapelet.precision,
        shapelet.source_index,
        shapelet.source_position,
        shapelet.values.tobytes(),
    )


def test_bench_edsc_candidate_mining_speedup(run_once):
    """EDSC threshold learning + scoring across all candidates of one length.

    This is exactly the stage the batched pipeline replaced: the reference
    learns a threshold and scores candidates one Python iteration at a time
    over the shared ``(n_candidates, n_series)`` best-match distance matrix.
    The candidate grid is left uncapped so the stage covers every extracted
    candidate at Table 1 scale.
    """
    train = _gunpoint(TABLE1_N_PER_CLASS, TABLE1_LENGTH)
    data, labels = train.series, train.labels
    length = data.shape[1]
    model = EDSCClassifier(threshold_method="che", max_candidates_per_class=10_000)
    window = max(3, int(round(0.15 * length)))

    matrix, cand_labels, src_index, src_position = model._extract_candidates(
        data, labels, window, np.random.default_rng(model.random_state)
    )
    distances, match_ends = _best_match_distances(matrix, data)

    def reference_stage():
        shapelets = []
        for row in range(matrix.shape[0]):
            target_mask = labels == cand_labels[row]
            threshold = model._learn_threshold(
                distances[row], target_mask, exclude=src_index[row]
            )
            if threshold is None or threshold <= 0:
                continue
            shapelet = model._score_candidate(
                values=matrix[row],
                label=cand_labels[row],
                threshold=threshold,
                distances=distances[row],
                match_ends=match_ends[row],
                target_mask=target_mask,
                series_length=length,
                source_index=src_index[row],
                source_position=src_position[row],
            )
            if shapelet is not None:
                shapelets.append(shapelet)
        return shapelets

    def batched_stage():
        thresholds = model._learn_thresholds_batch(
            distances, cand_labels, src_index, labels
        )
        return model._score_candidates_batch(
            matrix,
            cand_labels,
            thresholds,
            distances,
            match_ends,
            labels,
            length,
            src_index,
            src_position,
        )

    ref_seconds, reference = _best_of(reference_stage)
    new_seconds, batched = _best_of(batched_stage)
    run_once(batched_stage)

    assert [_shapelet_key(s) for s in batched] == [
        _shapelet_key(s) for s in reference
    ]

    speedup = ref_seconds / new_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP:.0f}x on threshold learning + scoring "
        f"of {matrix.shape[0]} Table 1 scale EDSC candidates, measured "
        f"{speedup:.1f}x (reference {ref_seconds * 1e3:.1f} ms, batched "
        f"{new_seconds * 1e3:.1f} ms)"
    )


def test_bench_edsc_fit_equivalence_and_no_regression(run_once):
    """Full EDSC fit at Table 1 scale: identical shapelets, no slowdown.

    The full fit is dominated by the (already vectorised, bit-for-bit
    shared) best-match distance kernel, so the headline >= 5x gate lives on
    the mining stage above; here the end-to-end fit must reproduce the
    reference selection exactly and must not be slower than it.
    """
    train = _gunpoint(TABLE1_N_PER_CLASS, TABLE1_LENGTH)

    ref_seconds, reference = _best_of(
        lambda: EDSCClassifier(threshold_method="che")._fit_reference(
            train.series, train.labels
        )
    )
    new_seconds, fitted = _best_of(
        lambda: EDSCClassifier(threshold_method="che").fit(
            train.series, train.labels
        )
    )
    run_once(
        lambda: EDSCClassifier(threshold_method="che").fit(
            train.series, train.labels
        )
    )

    assert [_shapelet_key(s) for s in fitted.shapelets_] == [
        _shapelet_key(s) for s in reference.shapelets_
    ]
    assert new_seconds <= ref_seconds, (
        f"batched EDSC fit regressed: reference {ref_seconds * 1e3:.1f} ms, "
        f"batched {new_seconds * 1e3:.1f} ms"
    )


def test_bench_dtw_pairwise_speedup(run_once):
    """Batched wavefront DTW vs one scalar dynamic program per pair.

    The baseline runs the kept scalar double-loop reference
    (``dtw_distance`` itself now rides the wavefront kernel, so timing it
    would only measure batch amortisation, not the DP rewrite).
    """
    rng = np.random.default_rng(11)
    queries = rng.standard_normal((15, TABLE1_LENGTH))
    train = rng.standard_normal((20, TABLE1_LENGTH))
    window = 0.1
    band = _resolve_band(TABLE1_LENGTH, TABLE1_LENGTH, window)

    def reference_pairs():
        return np.array(
            [
                [
                    np.sqrt(
                        _accumulated_cost_reference(q, t, band)[
                            TABLE1_LENGTH, TABLE1_LENGTH
                        ]
                    )
                    for t in train
                ]
                for q in queries
            ]
        )

    ref_seconds, reference = _best_of(reference_pairs, repeats=1)
    new_seconds, batched = _best_of(
        lambda: dtw_pairwise_distances(queries, train, window=window)
    )
    run_once(dtw_pairwise_distances, queries, train, window=window)

    np.testing.assert_allclose(batched, reference, atol=1e-10)

    speedup = ref_seconds / new_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP:.0f}x on a "
        f"{queries.shape[0]}x{train.shape[0]} banded DTW batch, measured "
        f"{speedup:.1f}x (per-pair {ref_seconds * 1e3:.0f} ms, wavefront "
        f"{new_seconds * 1e3:.1f} ms)"
    )
