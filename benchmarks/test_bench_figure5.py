"""Benchmark for Figure 5: the time-series homophone search."""

from repro.experiments import figure5


def test_bench_figure5_homophone_search(run_once):
    result = run_once(figure5.run)
    analysis = result.analysis
    # "in every case, there is non-gesture data that is much closer to one
    # member of the target class, than the other example from the target
    # class" -- at our corpus sizes we require it for every query as well.
    assert analysis.fraction_with_closer_homophone >= 0.5
    for query in analysis.queries:
        assert query.nearest_corpus_distance() < float("inf")
