"""Benchmark gate for the multichannel (n, L, d) distance kernels.

The multichannel data model promises that pooling a ``d``-vector per time
step costs one vectorised channel-summed kernel call, not a Python loop that
walks the channel axis.  This gate times exactly that claim at the scale a
Table-1-style fit/predict issues it: the checkpoint ladder of prefix
distances between a GunPoint-sized test split and its training set, on the
six-axis synthetic motion problem of the ``multivariate`` experiment.

The baseline is the straightforward pre-vectorisation implementation: for
every (query, train row) pair and every checkpoint, accumulate the squared
prefix distance one channel at a time.  Equivalence comes first, speed
second: the vectorised kernel must agree with that loop to ``<= 1e-10``
before its >= 5x wall-clock win counts.  A full fit + batched early predict
of the real classifier is also timed once, so the harness records what the
end-to-end multichannel path costs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.data.ucr_format import train_test_split
from repro.data.ucr_like import make_multichannel_cbf_dataset
from repro.distance.engine import batch_prefix_distances

REQUIRED_SPEEDUP = 5.0
ATOL = 1e-10

#: Table 1 scale: ~50 train / ~150 test exemplars across the three CBF
#: classes, six channels per time step.
N_PER_CLASS = 67
TRAIN_FRACTION = 0.25
LENGTH = 128
N_CHANNELS = 6

#: The checkpoint ladder a ``min_length=8, checkpoint_step=4`` classifier
#: evaluates during fit and batched predict.
MIN_LENGTH = 8
CHECKPOINT_STEP = 4


def _per_channel_loop(
    queries: np.ndarray, train: np.ndarray, lengths: list[int]
) -> np.ndarray:
    """The pre-vectorisation shape of the kernel: Python loops over every
    (query, train row) pair and checkpoint, summing squared prefix distances
    one channel at a time."""
    out = np.empty((len(lengths), queries.shape[0], train.shape[0]))
    for qi in range(queries.shape[0]):
        for ti in range(train.shape[0]):
            for li, length in enumerate(lengths):
                total = 0.0
                for c in range(queries.shape[2]):
                    diff = queries[qi, :length, c] - train[ti, :length, c]
                    total += float(diff @ diff)
                out[li, qi, ti] = np.sqrt(total)
    return out


def _best_of(function, repeats: int = 3):
    """Smallest wall-clock time over ``repeats`` runs (robust to CI jitter)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_multichannel_kernel_speedup(run_once):
    """Vectorised channel-summed prefix kernel vs a per-channel Python loop."""
    dataset = make_multichannel_cbf_dataset(
        n_per_class=N_PER_CLASS, length=LENGTH, n_channels=N_CHANNELS, seed=7
    )
    train, test = train_test_split(dataset, train_fraction=TRAIN_FRACTION)
    lengths = list(range(MIN_LENGTH, LENGTH + 1, CHECKPOINT_STEP))

    def vectorised():
        return batch_prefix_distances(test.series, train.series, lengths)

    def per_channel():
        return _per_channel_loop(test.series, train.series, lengths)

    # The loop is orders of magnitude off the pace; one run is plenty.
    loop_seconds, loop_result = _best_of(per_channel, repeats=1)
    fast_seconds, fast_result = _best_of(vectorised)

    # Equivalence first: the vectorised kernel is pinned to the loop.
    assert fast_result.shape == loop_result.shape
    np.testing.assert_allclose(fast_result, loop_result, atol=ATOL, rtol=0.0)

    speedup = loop_seconds / fast_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP:.0f}x on the "
        f"{test.n_exemplars}x{train.n_exemplars} length-{LENGTH} "
        f"{N_CHANNELS}-channel checkpoint ladder ({len(lengths)} lengths), "
        f"measured {speedup:.1f}x (loop {loop_seconds * 1e3:.0f} ms, "
        f"vectorised {fast_seconds * 1e3:.0f} ms)"
    )

    # Record what the real end-to-end multichannel path costs.
    def fit_predict():
        model = ProbabilityThresholdClassifier(
            threshold=0.55, min_length=MIN_LENGTH, checkpoint_step=CHECKPOINT_STEP
        )
        model.fit(train.series, train.labels)
        return model.predict_early_batch(test.series)

    outcomes = run_once(fit_predict)
    assert len(outcomes) == test.n_exemplars
