"""Benchmarks for the experiment runtime: cache speedup and parallel sweep.

Two claims are enforced:

* a warm prepare-stage cache makes re-running a prepare-dominated
  experiment at least 5x faster than a cold run (the cache pays for the
  synthesis + model fitting, the re-run pays only compute/render +
  one unpickle);
* a 2-worker multi-experiment sweep beats the sequential wall-clock when
  the machine actually has a second core to run it on (on single-core
  runners the strict comparison is meaningless, so the benchmark falls
  back to asserting the process-pool overhead is bounded and the outputs
  identical).
"""

from __future__ import annotations

import os
import time

from repro.runtime.cache import PrepareCache
from repro.runtime.scheduler import execute_spec, run_experiments

REQUIRED_CACHE_SPEEDUP = 5.0

#: The representative prepare-dominated experiment: fitting TEASER and the
#: threshold model on a 200-exemplar GunPoint split dwarfs tracing a single
#: test exemplar, so nearly all of the cold wall-clock is cacheable.
REPRESENTATIVE = "figure3"
REPRESENTATIVE_OVERRIDES = {
    "n_train_per_class": 100,
    "n_test_per_class": 5,
    "exemplar_index": 0,
}

#: The sweep pair: two independent mid-scale experiments with no shared
#: state, each substantial enough to amortise worker start-up.
SWEEP = ["figure5", "figure8"]
SWEEP_OVERRIDES: dict = {}


def _best_of(function, repeats: int = 3):
    """Smallest wall-clock time over ``repeats`` runs (robust to CI jitter)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_warm_cache_rerun_speedup(tmp_path, run_once):
    cache = PrepareCache(tmp_path / "cache")

    cold_started = time.perf_counter()
    cold = execute_spec(
        REPRESENTATIVE, overrides=REPRESENTATIVE_OVERRIDES, cache=cache
    )
    cold_seconds = time.perf_counter() - cold_started
    assert not cold.cache_hit

    warm_seconds, warm = _best_of(
        lambda: execute_spec(
            REPRESENTATIVE, overrides=REPRESENTATIVE_OVERRIDES, cache=cache
        )
    )
    # Record the warm re-run under the benchmark timer for the harness log.
    run_once(
        execute_spec, REPRESENTATIVE, overrides=REPRESENTATIVE_OVERRIDES, cache=cache
    )

    assert warm.cache_hit
    assert warm.summary == cold.summary  # the cache changes cost, not bytes

    speedup = cold_seconds / warm_seconds
    assert speedup >= REQUIRED_CACHE_SPEEDUP, (
        f"expected a warm-cache re-run of {REPRESENTATIVE} to be >= "
        f"{REQUIRED_CACHE_SPEEDUP:.0f}x faster than cold, measured "
        f"{speedup:.1f}x (cold {cold_seconds * 1e3:.0f} ms, warm "
        f"{warm_seconds * 1e3:.0f} ms)"
    )


def test_bench_two_worker_sweep(tmp_path, run_once):
    sequential_started = time.perf_counter()
    sequential = run_experiments(SWEEP, jobs=1, overrides=SWEEP_OVERRIDES)
    sequential_seconds = time.perf_counter() - sequential_started

    parallel_started = time.perf_counter()
    parallel = run_experiments(
        SWEEP, jobs=2, overrides=SWEEP_OVERRIDES, cache=PrepareCache(tmp_path / "cache")
    )
    parallel_seconds = time.perf_counter() - parallel_started
    run_once(run_experiments, SWEEP, jobs=2, overrides=SWEEP_OVERRIDES)

    # Whatever the hardware, the two modes must agree byte-for-byte.
    assert [r.summary for r in parallel] == [r.summary for r in sequential]

    if (os.cpu_count() or 1) >= 2:
        assert parallel_seconds < sequential_seconds, (
            f"expected the 2-worker sweep of {SWEEP} to beat sequential "
            f"wall-clock, measured parallel {parallel_seconds:.2f} s vs "
            f"sequential {sequential_seconds:.2f} s"
        )
    else:
        # Single-core runner: parallelism cannot win; bound the overhead of
        # going through the process pool instead.
        assert parallel_seconds < sequential_seconds * 1.75 + 0.75, (
            f"process-pool overhead out of bounds on a single-core machine: "
            f"parallel {parallel_seconds:.2f} s vs sequential "
            f"{sequential_seconds:.2f} s"
        )
