"""Benchmark for Figure 9: the GunPoint prefix error-rate curve."""

from repro.experiments import figure9


def test_bench_figure9_prefix_curve(run_once):
    result = run_once(figure9.run)
    # The paper's headline numbers: ~31% of the data matches full-length
    # accuracy and ~33% beats it; full-length error is ~0.09.
    assert result.fraction_needed <= 0.45
    assert result.curve.beats_full_length()
    assert result.best_length < 75
    assert result.full_length_error <= 0.2
    # Short prefixes (before the draw starts) are near chance.
    assert result.curve.error_rates[0] >= 0.3
