"""Benchmark gate for the numba-compiled DTW kernel tier.

The ``"pruned"`` backend already answers most candidate pairs of a DTW 1-NN
evaluation with constant-time bounds; what remains is interpreter overhead on
the survivors -- numpy dispatch per chunked DP batch and per-pair Python
bookkeeping.  The ``"compiled"`` tier moves the whole cascade (LB_Kim,
LB_Keogh in both envelope directions, banded early-abandoning DP) into
``@njit`` kernels, and this gate times that claim on the same Table-1-scale
split as ``test_bench_dtw_prune``: 150 queries x 50 train exemplars,
length 150, 10% band.

The contract mirrors the pruned gate.  Equivalence comes first: the compiled
search must return bit-identical neighbour indices and distances to the dense
float64 reference before any wall-clock win counts.  The >= 5x speedup over
the pruned numpy cascade is asserted only when numba is genuinely available
-- JIT compilation is excluded by warming the kernels up front.  Without
numba the tier must degrade transparently: the same call resolves to the
pruned cascade, still bit-identical, and the record notes the fallback
before the timing assertion is skipped.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.data.gunpoint import GunPointGenerator
from repro.distance.backends import (
    backend_resolution,
    compiled_dtw_nearest_neighbors,
    pruned_dtw_nearest_neighbors,
)
from repro.distance.engine import _stable_k_smallest, dtw_pairwise_distances
from repro.distance.znorm import znormalize

from test_bench_dtw_prune import (
    LENGTH,
    TEST_PER_CLASS,
    TRAIN_PER_CLASS,
    WINDOW,
    _best_of,
)

REQUIRED_SPEEDUP = 5.0


def test_bench_compiled_dtw_nn_speedup(run_once, bench_metrics):
    """Compiled cascade vs the pruned numpy cascade on Table-1-scale DTW 1-NN."""
    resolution = backend_resolution("compiled")
    generator = GunPointGenerator(length=LENGTH, seed=7)
    train = generator.generate(n_per_class=TRAIN_PER_CLASS, seed=7)
    test = generator.generate(n_per_class=TEST_PER_CLASS, seed=11)
    train_series = znormalize(train.series)
    test_series = znormalize(test.series)

    def dense_search():
        distances = dtw_pairwise_distances(
            test_series, train_series, window=WINDOW, backend="reference"
        )
        return _stable_k_smallest(distances, 1)

    def pruned_search():
        return pruned_dtw_nearest_neighbors(
            test_series, train_series, window=WINDOW, return_stats=True
        )

    def compiled_search():
        return compiled_dtw_nearest_neighbors(
            test_series, train_series, window=WINDOW, return_stats=True
        )

    bench_metrics.update(
        requested_backend=resolution.requested,
        resolved_backend=resolution.resolved,
        compiled_available=resolution.compiled_available,
    )

    dense_idx, dense_dist = dense_search()
    pruned_idx, pruned_dist, _ = pruned_search()
    np.testing.assert_array_equal(pruned_idx, dense_idx)
    np.testing.assert_array_equal(pruned_dist, dense_dist)

    if resolution.resolved != "compiled":
        # Transparent degradation: the compiled entry point must still give
        # the exact reference answer (via the pruned cascade), warning aside.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            compiled_idx, compiled_dist, stats = compiled_search()
        np.testing.assert_array_equal(compiled_idx, dense_idx)
        np.testing.assert_array_equal(compiled_dist, dense_dist)
        assert stats.backend == "pruned"
        pytest.skip(
            f"numba unavailable ({resolution.reason}); compiled tier verified "
            "to fall back bit-identically to the pruned cascade"
        )

    # JIT compilation is a one-off cost; take it before the timer starts.
    from repro.distance.kernels import cascade

    cascade.warmup(dtype=test_series.dtype.type)

    compiled_seconds, (compiled_idx, compiled_dist, stats) = _best_of(compiled_search)
    pruned_seconds, _ = _best_of(pruned_search)
    run_once(compiled_search)

    np.testing.assert_array_equal(compiled_idx, dense_idx)
    np.testing.assert_array_equal(compiled_dist, dense_dist)
    np.testing.assert_array_equal(
        train.labels[compiled_idx[:, 0]], train.labels[dense_idx[:, 0]]
    )
    assert stats.backend == "compiled"
    assert stats.n_pairs == test_series.shape[0] * train_series.shape[0]

    speedup = pruned_seconds / compiled_seconds
    bench_metrics.update(
        speedup=speedup,
        pruned_seconds=pruned_seconds,
        compiled_seconds=compiled_seconds,
        pruning_rate=stats.pruning_rate,
        n_pairs=stats.n_pairs,
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP:.0f}x over the pruned numpy cascade on "
        f"a {test_series.shape[0]}x{train_series.shape[0]} length-{LENGTH} "
        f"DTW 1-NN evaluation with a {WINDOW:.0%} band, measured "
        f"{speedup:.1f}x (pruned {pruned_seconds * 1e3:.0f} ms, compiled "
        f"{compiled_seconds * 1e3:.0f} ms)"
    )
