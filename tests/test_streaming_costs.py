"""Unit tests for the Appendix B cost model."""

import pytest

from repro.streaming.costs import CostModel
from repro.streaming.metrics import StreamingEvaluation


def _evaluation(tp: int, fp: int, fn: int) -> StreamingEvaluation:
    return StreamingEvaluation(
        n_alarms=tp + fp,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        precision=tp / (tp + fp) if tp + fp else 0.0,
        recall=tp / (tp + fn) if tp + fn else 0.0,
        false_positives_per_true_positive=fp / tp if tp else (float("inf") if fp else 0.0),
        false_alarms_per_1000_samples=0.0,
        mean_fraction_of_event_seen=None,
        stream_length=10_000,
    )


class TestCostModel:
    def test_defaults_match_appendix_b(self):
        model = CostModel()
        assert model.event_cost == 1000.0
        assert model.action_cost == 200.0
        # "at least one true positive for every five false positives" is the
        # loose version; the exact break-even budget nets out the action cost
        # of the true positive itself.
        assert model.break_even_false_positives_per_true_positive == pytest.approx(4.0)
        assert model.event_cost / model.action_cost == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(event_cost=-1)
        with pytest.raises(ValueError):
            CostModel(prevention_effectiveness=1.5)

    def test_perfect_detector_saves_money(self):
        outcome = CostModel().price(_evaluation(tp=10, fp=0, fn=0))
        assert outcome.breaks_even
        assert outcome.net_saving == pytest.approx(10 * (1000 - 200))

    def test_break_even_boundary(self):
        # 1 TP pays for itself plus exactly 4 FPs with the default numbers.
        outcome = CostModel().price(_evaluation(tp=1, fp=4, fn=0))
        assert outcome.net_saving == pytest.approx(0.0)
        assert outcome.breaks_even

    def test_too_many_false_positives_lose_money(self):
        outcome = CostModel().price(_evaluation(tp=1, fp=50, fn=0))
        assert not outcome.breaks_even
        assert outcome.net_saving < 0

    def test_missed_events_cost_full_price(self):
        outcome = CostModel().price(_evaluation(tp=0, fp=0, fn=5))
        assert outcome.total_cost == pytest.approx(5 * 1000)
        assert outcome.baseline_cost == pytest.approx(5 * 1000)
        assert outcome.net_saving == pytest.approx(0.0)

    def test_partial_prevention_effectiveness(self):
        model = CostModel(prevention_effectiveness=0.5)
        outcome = model.price(_evaluation(tp=2, fp=0, fn=0))
        # Each TP averts half the event cost but still pays the action.
        assert outcome.net_saving == pytest.approx(2 * (500 - 200))

    def test_zero_action_cost_infinite_budget(self):
        model = CostModel(action_cost=0.0)
        assert model.break_even_false_positives_per_true_positive == float("inf")
