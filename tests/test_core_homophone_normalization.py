"""Unit tests for the homophone analysis, normalisation audit and prefix curve."""

import numpy as np
import pytest

from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.core.homophone_analysis import find_time_series_homophones, homophone_analysis
from repro.core.normalization_audit import audit_normalization_sensitivity
from repro.core.prefix_accuracy import PrefixAccuracyCurve, compute_prefix_accuracy_curve
from repro.data.random_walk import smoothed_random_walk


class TestFindHomophones:
    def test_returns_k_hits_per_corpus(self, gunpoint_small):
        _, test = gunpoint_small
        corpora = {"walk": smoothed_random_walk(20_000, seed=1)}
        hits = find_time_series_homophones(test.series[0], corpora, k=3)
        assert set(hits) == {"walk"}
        assert len(hits["walk"]) == 3
        distances = [d for _, d in hits["walk"]]
        assert distances == sorted(distances)

    def test_planted_copy_is_found(self, gunpoint_small):
        _, test = gunpoint_small
        query = test.series[0]
        corpus = smoothed_random_walk(5_000, seed=2)
        corpus[1000 : 1000 + query.shape[0]] = query * 3.0 + 7.0  # offset/scale no hiding place
        hits = find_time_series_homophones(query, {"planted": corpus}, k=1)
        position, distance = hits["planted"][0]
        assert abs(position - 1000) <= 2
        assert distance < 0.5

    def test_corpus_shorter_than_query_rejected(self, gunpoint_small):
        _, test = gunpoint_small
        with pytest.raises(ValueError):
            find_time_series_homophones(test.series[0], {"tiny": np.zeros(10)})

    def test_empty_corpora_rejected(self, gunpoint_small):
        _, test = gunpoint_small
        with pytest.raises(ValueError):
            find_time_series_homophones(test.series[0], {})


class TestHomophoneAnalysis:
    def test_large_random_walk_contains_homophones(self, gunpoint_medium):
        # The Fig. 5 claim at laptop scale: a long enough featureless corpus
        # contains subsequences closer to a gesture than another gesture of
        # the same class is.
        _, test = gunpoint_medium
        corpora = {"walk": smoothed_random_walk(2 ** 18, seed=3)}
        analysis = homophone_analysis(test, corpora, n_queries=2, seed=5)
        assert analysis.fraction_with_closer_homophone >= 0.5
        for query in analysis.queries:
            assert query.in_class_distance > 0
            assert query.nearest_corpus_distance() < np.inf

    def test_result_bookkeeping(self, gunpoint_small):
        _, test = gunpoint_small
        corpora = {"walk": smoothed_random_walk(10_000, seed=4)}
        analysis = homophone_analysis(test, corpora, n_queries=3, k=2, seed=1)
        assert len(analysis.queries) == 3
        assert analysis.corpora_sizes == {"walk": 10_000}

    def test_validation(self, gunpoint_small):
        _, test = gunpoint_small
        with pytest.raises(ValueError):
            homophone_analysis(test, {"walk": smoothed_random_walk(5_000)}, n_queries=0)


class TestNormalizationAudit:
    def test_audit_reports_drop_for_raw_value_model(self, gunpoint_medium):
        train, test = gunpoint_medium
        audit = audit_normalization_sensitivity(
            lambda: ProbabilityThresholdClassifier(threshold=0.8, min_length=10, checkpoint_step=5),
            train,
            test.subset(range(30)),
            algorithm_name="threshold",
        )
        assert audit.algorithm == "threshold"
        assert 0.0 <= audit.normalized.accuracy <= 1.0
        assert audit.accuracy_drop == pytest.approx(
            audit.normalized.accuracy - audit.denormalized.accuracy
        )
        # The threshold model consumes raw values, so the perturbation hurts.
        assert audit.accuracy_drop > 0.0
        assert audit.is_sensitive == (audit.accuracy_drop > 0.05)

    def test_length_mismatch_rejected(self, gunpoint_medium, gunpoint_small):
        train, _ = gunpoint_medium
        _, other_test = gunpoint_small
        with pytest.raises(ValueError):
            audit_normalization_sensitivity(
                lambda: ProbabilityThresholdClassifier(), train, other_test
            )


class TestPrefixAccuracyCurve:
    def test_compute_on_gunpoint(self, gunpoint_medium_raw):
        train, test = gunpoint_medium_raw
        curve = compute_prefix_accuracy_curve(train, test, lengths=[20, 50, 100, 150])
        assert curve.lengths == (20, 50, 100, 150)
        assert len(curve.accuracies) == 4
        assert curve.series_length == 150
        assert curve.renormalized

    def test_headline_numbers(self, gunpoint_medium_raw):
        train, test = gunpoint_medium_raw
        curve = compute_prefix_accuracy_curve(train, test, lengths=[20, 40, 50, 60, 100, 150])
        # The discriminative region ends near sample 60, so a mid-length
        # prefix should do at least as well as the full exemplar.
        assert curve.accuracy_at(50) >= curve.full_length_accuracy - 0.05
        assert curve.shortest_length_matching_full(tolerance=0.05) <= 100
        assert 0.0 < curve.fraction_needed(tolerance=0.05) <= 1.0
        assert curve.best_length() in curve.lengths

    def test_error_rates_complement_accuracies(self):
        curve = PrefixAccuracyCurve(
            lengths=(10, 20), accuracies=(0.7, 0.9), series_length=20, renormalized=True
        )
        assert curve.error_rates == (pytest.approx(0.3), pytest.approx(0.1))
        assert curve.beats_full_length() is False
        assert curve.as_rows()[0] == (10, 0.7, pytest.approx(0.3))

    def test_accuracy_at_unknown_length_raises(self):
        curve = PrefixAccuracyCurve(
            lengths=(10, 20), accuracies=(0.7, 0.9), series_length=20, renormalized=True
        )
        with pytest.raises(KeyError):
            curve.accuracy_at(15)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixAccuracyCurve(lengths=(10,), accuracies=(0.5, 0.6), series_length=20, renormalized=True)
        with pytest.raises(ValueError):
            PrefixAccuracyCurve(lengths=(20, 10), accuracies=(0.5, 0.6), series_length=20, renormalized=True)
        with pytest.raises(ValueError):
            PrefixAccuracyCurve(lengths=(), accuracies=(), series_length=20, renormalized=True)
