"""Unit tests for streaming evaluation metrics."""

import numpy as np
import pytest

from repro.data.stream import ComposedStream, GroundTruthEvent
from repro.streaming.detector import Alarm
from repro.streaming.metrics import evaluate_alarms


def _stream() -> ComposedStream:
    return ComposedStream(
        values=np.zeros(2_000),
        events=[
            GroundTruthEvent(start=100, end=150, label="gun"),
            GroundTruthEvent(start=900, end=950, label="gun"),
        ],
    )


def _alarm(position: int, label: str = "gun") -> Alarm:
    return Alarm(position=position, candidate_start=max(position - 20, 0), label=label,
                 confidence=0.8, prefix_length=20)


class TestEvaluateAlarms:
    def test_counts(self):
        alarms = [_alarm(120), _alarm(500), _alarm(600)]
        evaluation = evaluate_alarms(alarms, _stream())
        assert evaluation.true_positives == 1
        assert evaluation.false_positives == 2
        assert evaluation.false_negatives == 1
        assert evaluation.n_alarms == 3

    def test_precision_recall(self):
        alarms = [_alarm(120), _alarm(500)]
        evaluation = evaluate_alarms(alarms, _stream())
        assert evaluation.precision == pytest.approx(0.5)
        assert evaluation.recall == pytest.approx(0.5)

    def test_fp_per_tp(self):
        alarms = [_alarm(120), _alarm(500), _alarm(600), _alarm(700)]
        evaluation = evaluate_alarms(alarms, _stream())
        assert evaluation.false_positives_per_true_positive == pytest.approx(3.0)

    def test_fp_per_tp_infinite_when_no_tp(self):
        evaluation = evaluate_alarms([_alarm(500)], _stream())
        assert evaluation.false_positives_per_true_positive == float("inf")

    def test_fp_per_tp_zero_when_no_alarms(self):
        evaluation = evaluate_alarms([], _stream())
        assert evaluation.false_positives_per_true_positive == 0.0
        assert evaluation.precision == 0.0
        assert evaluation.recall == 0.0

    def test_false_alarm_rate_normalised_by_length(self):
        evaluation = evaluate_alarms([_alarm(500), _alarm(700)], _stream())
        assert evaluation.false_alarms_per_1000_samples == pytest.approx(1.0)

    def test_mean_fraction_of_event_seen(self):
        evaluation = evaluate_alarms([_alarm(149)], _stream())
        assert evaluation.mean_fraction_of_event_seen == pytest.approx(1.0)

    def test_mean_fraction_none_without_tp(self):
        evaluation = evaluate_alarms([_alarm(500)], _stream())
        assert evaluation.mean_fraction_of_event_seen is None
