"""Unit tests for repro.distance.profile (MASS-style distance profiles)."""

import numpy as np
import pytest

from repro.distance.euclidean import euclidean_distance, znormalized_euclidean_distance
from repro.distance.profile import (
    DistanceProfileIndex,
    count_matches_below,
    distance_profile,
    sliding_dot_product,
    sliding_mean_std,
    top_k_nearest_subsequences,
)


class TestSlidingMeanStd:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        series = rng.standard_normal(200)
        window = 17
        means, stds = sliding_mean_std(series, window)
        assert means.shape == (200 - window + 1,)
        for i in (0, 50, 183):
            segment = series[i : i + window]
            assert means[i] == pytest.approx(segment.mean(), abs=1e-9)
            assert stds[i] == pytest.approx(segment.std(), abs=1e-9)

    def test_window_one(self):
        series = np.array([1.0, 2.0, 3.0])
        means, stds = sliding_mean_std(series, 1)
        np.testing.assert_allclose(means, series)
        np.testing.assert_allclose(stds, np.zeros(3))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            sliding_mean_std(np.arange(10.0), 11)
        with pytest.raises(ValueError):
            sliding_mean_std(np.arange(10.0), 0)


class TestSlidingDotProduct:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        query = rng.standard_normal(9)
        series = rng.standard_normal(60)
        dots = sliding_dot_product(query, series)
        assert dots.shape == (60 - 9 + 1,)
        for i in (0, 25, 51):
            assert dots[i] == pytest.approx(float(query @ series[i : i + 9]), abs=1e-8)

    def test_rejects_query_longer_than_series(self):
        with pytest.raises(ValueError):
            sliding_dot_product(np.arange(10.0), np.arange(5.0))


class TestDistanceProfile:
    def test_znormalized_matches_brute_force(self):
        rng = np.random.default_rng(2)
        query = rng.standard_normal(12)
        series = rng.standard_normal(80)
        profile = distance_profile(query, series)
        for i in (0, 13, 40, 68):
            expected = znormalized_euclidean_distance(query, series[i : i + 12])
            assert profile[i] == pytest.approx(expected, abs=1e-6)

    def test_raw_matches_brute_force(self):
        rng = np.random.default_rng(3)
        query = rng.standard_normal(10)
        series = rng.standard_normal(50)
        profile = distance_profile(query, series, znormalized=False)
        for i in (0, 20, 40):
            expected = euclidean_distance(query, series[i : i + 10])
            assert profile[i] == pytest.approx(expected, abs=1e-6)

    def test_exact_match_yields_zero(self):
        rng = np.random.default_rng(4)
        series = rng.standard_normal(100)
        query = series[30:45].copy()
        profile = distance_profile(query, series)
        assert profile[30] == pytest.approx(0.0, abs=1e-5)
        assert int(np.argmin(profile)) == 30

    def test_constant_subsequences_get_maximal_distance(self):
        series = np.concatenate([np.zeros(30), np.sin(np.linspace(0, 6, 30))])
        query = np.sin(np.linspace(0, 3, 10))
        profile = distance_profile(query, series)
        # Windows entirely inside the flat region cannot be z-normalised; the
        # convention is the maximal distance sqrt(2m).
        assert profile[0] == pytest.approx(np.sqrt(2 * 10))

    def test_profile_length(self):
        profile = distance_profile(np.arange(5.0), np.arange(20.0))
        assert profile.shape == (16,)

    def test_rejects_too_short_query(self):
        with pytest.raises(ValueError):
            distance_profile(np.array([1.0]), np.arange(10.0))

    def test_rejects_query_longer_than_series(self):
        with pytest.raises(ValueError):
            distance_profile(np.arange(11.0), np.arange(10.0))


class TestTopKNearest:
    def test_returns_sorted_distances(self):
        rng = np.random.default_rng(5)
        series = rng.standard_normal(300)
        query = rng.standard_normal(15)
        hits = top_k_nearest_subsequences(query, series, k=4)
        distances = [d for _, d in hits]
        assert distances == sorted(distances)

    def test_exclusion_zone_prevents_overlaps(self):
        rng = np.random.default_rng(6)
        series = rng.standard_normal(200)
        query = series[50:70].copy()
        hits = top_k_nearest_subsequences(query, series, k=3)
        positions = [p for p, _ in hits]
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                assert abs(positions[i] - positions[j]) >= 10  # half the query length

    def test_k_one_is_argmin(self):
        rng = np.random.default_rng(7)
        series = rng.standard_normal(150)
        query = rng.standard_normal(12)
        hits = top_k_nearest_subsequences(query, series, k=1)
        profile = distance_profile(query, series)
        assert hits[0][0] == int(np.argmin(profile))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_nearest_subsequences(np.arange(5.0), np.arange(50.0), k=0)


class TestCountMatchesBelow:
    def test_counts_planted_matches(self):
        rng = np.random.default_rng(8)
        template = np.sin(np.linspace(0, 4 * np.pi, 40))
        background = rng.standard_normal(2000) * 0.5
        series = background.copy()
        for start in (100, 700, 1500):
            series[start : start + 40] = template + 0.01 * rng.standard_normal(40)
        count = count_matches_below(template, series, threshold=1.0)
        assert count == 3

    def test_zero_when_threshold_tiny(self):
        rng = np.random.default_rng(9)
        series = rng.standard_normal(500)
        query = rng.standard_normal(20)
        assert count_matches_below(query, series, threshold=1e-6) == 0


class TestDistanceProfileIndex:
    def test_nearest_and_extract(self):
        rng = np.random.default_rng(10)
        series = rng.standard_normal(400)
        index = DistanceProfileIndex(name="corpus", series=series)
        query = series[100:130].copy()
        hits = index.nearest(query, k=1)
        assert hits[0][0] == 100
        np.testing.assert_allclose(index.extract(100, 30), series[100:130])

    def test_nearest_distance_scalar(self):
        rng = np.random.default_rng(11)
        series = rng.standard_normal(300)
        index = DistanceProfileIndex(name="corpus", series=series)
        assert index.nearest_distance(series[10:40]) == pytest.approx(0.0, abs=1e-5)

    def test_extract_rejects_out_of_range(self):
        index = DistanceProfileIndex(name="c", series=np.arange(50.0))
        with pytest.raises(IndexError):
            index.extract(45, 10)

    def test_rejects_2d_series(self):
        with pytest.raises(ValueError):
            DistanceProfileIndex(name="c", series=np.zeros((4, 5)))
