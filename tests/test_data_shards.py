"""Tests for the sharded on-disk dataset format (:mod:`repro.data.shards`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.shards import (
    ShardIntegrityError,
    ShardedDataset,
    ShardedSeriesView,
    synthesize_sharded_archive,
    write_shards,
)
from repro.data.ucr_like import make_cbf_dataset
from repro.memory import memory_budget


@pytest.fixture()
def dataset():
    return make_cbf_dataset(n_per_class=8, length=48, seed=11)


@pytest.fixture()
def sharded(dataset, tmp_path):
    return write_shards(dataset, tmp_path / "ds", shard_exemplars=7)


class TestWriter:
    def test_roundtrip_series_and_labels(self, dataset, sharded):
        np.testing.assert_array_equal(np.asarray(sharded.series), dataset.series)
        np.testing.assert_array_equal(sharded.labels, dataset.labels)
        assert sharded.name == dataset.name
        assert sharded.n_exemplars == dataset.n_exemplars
        assert sharded.series_length == dataset.series_length
        assert sharded.classes == dataset.classes
        assert sharded.class_counts() == dataset.class_counts()

    def test_shard_layout(self, dataset, sharded, tmp_path):
        # 24 exemplars in shards of 7 -> 7, 7, 7, 3.
        assert sharded.n_shards == 4
        sizes = [sharded.shard_series(i).shape[0] for i in range(4)]
        assert sizes == [7, 7, 7, 3]
        manifest = json.loads((tmp_path / "ds" / "manifest.json").read_text())
        assert manifest["format"] == "repro-shards"
        assert manifest["n_exemplars"] == 24
        assert len(manifest["shards"]) == 4

    def test_tuple_source(self, dataset, tmp_path):
        out = write_shards(
            (dataset.series, dataset.labels), tmp_path / "t", shard_exemplars=10
        )
        np.testing.assert_array_equal(np.asarray(out.series), dataset.series)

    def test_streaming_chunk_source_reblocks(self, dataset, tmp_path):
        def chunks():
            for start in range(0, 24, 5):  # ragged 5-row chunks
                yield dataset.series[start : start + 5], dataset.labels[start : start + 5]

        out = write_shards(chunks(), tmp_path / "s", shard_exemplars=9)
        assert [out.shard_series(i).shape[0] for i in range(out.n_shards)] == [9, 9, 6]
        np.testing.assert_array_equal(np.asarray(out.series), dataset.series)
        np.testing.assert_array_equal(out.labels, dataset.labels)

    def test_refuses_to_overwrite_without_flag(self, dataset, sharded, tmp_path):
        with pytest.raises(FileExistsError):
            write_shards(dataset, tmp_path / "ds")
        write_shards(dataset, tmp_path / "ds", overwrite=True)  # explicit is fine

    def test_rejects_non_finite_series(self, dataset, tmp_path):
        bad = dataset.series.copy()
        bad[3, 10] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            write_shards((bad, dataset.labels), tmp_path / "bad")

    def test_rejects_inconsistent_chunk_lengths(self, tmp_path):
        def chunks():
            yield np.zeros((2, 8)), np.zeros(2)
            yield np.zeros((2, 9)), np.zeros(2)

        with pytest.raises(ValueError, match="length"):
            write_shards(chunks(), tmp_path / "bad")

    def test_rejects_empty_source(self, tmp_path):
        with pytest.raises(ValueError, match="no exemplars"):
            write_shards(iter(()), tmp_path / "empty")

    def test_znorm_stats_header(self, dataset, sharded):
        means, stds = sharded.shard_stats(0)
        np.testing.assert_allclose(means, dataset.series[:7].mean(axis=1))
        np.testing.assert_allclose(stds, dataset.series[:7].std(axis=1))


class TestLaziness:
    def test_shard_series_is_a_memmap(self, sharded):
        assert isinstance(sharded.shard_series(0), np.memmap)

    def test_shard_dataset_keeps_the_memmap(self, sharded):
        # The whole point: building the UCRDataset view must not materialise
        # (or even scan) the shard.
        view = sharded.shard_dataset(1)
        assert isinstance(view.series, np.memmap)
        assert view.n_exemplars == 7
        assert view.metadata["shard_index"] == 1

    def test_series_view_is_lazy_and_indexable(self, dataset, sharded):
        view = sharded.series
        assert isinstance(view, ShardedSeriesView)
        assert view.shape == dataset.series.shape
        assert len(view) == 24
        np.testing.assert_array_equal(view[5], dataset.series[5])
        np.testing.assert_array_equal(view[-1], dataset.series[-1])
        np.testing.assert_array_equal(view[3:20], dataset.series[3:20])
        np.testing.assert_array_equal(view[[0, 9, 23]], dataset.series[[0, 9, 23]])
        mask = np.zeros(24, dtype=bool)
        mask[[2, 8]] = True
        np.testing.assert_array_equal(view[mask], dataset.series[mask])

    def test_series_view_rejects_out_of_range(self, sharded):
        with pytest.raises(IndexError):
            sharded.series[24]

    def test_iter_batches_respects_the_budget(self, dataset, sharded):
        # 48 float64 samples/row = 384 bytes; a 1 KiB budget caps rows at 2.
        with memory_budget(1024):
            batches = list(sharded.iter_batches())
        assert max(series.shape[0] for series, _ in batches) <= 2
        np.testing.assert_array_equal(
            np.concatenate([series for series, _ in batches]), dataset.series
        )
        np.testing.assert_array_equal(
            np.concatenate([labels for _, labels in batches]), dataset.labels
        )

    def test_iter_shards_covers_everything(self, dataset, sharded):
        stacked = np.concatenate([shard.series for shard in sharded.iter_shards()])
        np.testing.assert_array_equal(stacked, dataset.series)

    def test_materialize_is_the_explicit_dense_path(self, dataset, sharded):
        dense = sharded.materialize()
        assert not isinstance(dense.series, np.memmap)
        np.testing.assert_array_equal(dense.series, dataset.series)
        np.testing.assert_array_equal(dense.labels, dataset.labels)


class TestIntegrity:
    def test_verify_passes_on_untouched_files(self, sharded):
        sharded.verify()

    def test_verify_catches_modified_bytes(self, sharded, tmp_path):
        target = tmp_path / "ds" / "shard-0001.series.npy"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(ShardIntegrityError, match="hash mismatch"):
            sharded.verify()

    def test_verify_catches_missing_files(self, sharded, tmp_path):
        (tmp_path / "ds" / "shard-0002.labels.npy").unlink()
        with pytest.raises(ShardIntegrityError, match="missing"):
            sharded.verify()

    def test_open_rejects_non_manifest_directories(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedDataset.open(tmp_path)
        (tmp_path / "manifest.json").write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro shard manifest"):
            ShardedDataset.open(tmp_path)


class TestSyntheticArchive:
    def test_archive_is_deterministic_and_self_contained(self, tmp_path):
        dirs = synthesize_sharded_archive(
            tmp_path / "a", 3, n_exemplars_per_class=4, length=48, seed=5
        )
        again = synthesize_sharded_archive(
            tmp_path / "b", 3, n_exemplars_per_class=4, length=48, seed=5
        )
        assert len(dirs) == 3
        for left, right in zip(dirs, again):
            one, two = ShardedDataset.open(left), ShardedDataset.open(right)
            np.testing.assert_array_equal(np.asarray(one.series), np.asarray(two.series))
            np.testing.assert_array_equal(one.labels, two.labels)
            one.verify()

    def test_datasets_differ_across_the_archive(self, tmp_path):
        dirs = synthesize_sharded_archive(
            tmp_path / "a", 2, n_exemplars_per_class=4, length=48, seed=5
        )
        one = np.asarray(ShardedDataset.open(dirs[0]).series)
        two = np.asarray(ShardedDataset.open(dirs[1]).series)
        assert not np.array_equal(one, two)

    def test_shard_zero_is_class_mixed(self, tmp_path):
        # The sweep trains on shard 0; a class-blocked layout would make
        # that split degenerate (the bug the shuffle exists to prevent).
        (directory,) = synthesize_sharded_archive(
            tmp_path / "a", 1, n_exemplars_per_class=8, length=48, seed=5
        )
        sharded = ShardedDataset.open(directory)
        assert len(np.unique(sharded.shard_labels(0))) > 1
