"""Unit tests for the synthetic ECG generator."""

import numpy as np
import pytest

from repro.data.ecg import ECGGenerator, beat_statistics, make_ecg_beat_dataset
from repro.distance.neighbors import KNeighborsTimeSeriesClassifier


class TestBeat:
    def test_beat_length_default(self):
        generator = ECGGenerator(sampling_rate=128, heart_rate_bpm=60, seed=1)
        beat = generator.beat()
        assert beat.shape == (128,)

    def test_r_wave_is_dominant_peak(self):
        generator = ECGGenerator(seed=2)
        beat = generator.beat(length=100)
        peak_position = int(np.argmax(beat)) / 100
        assert 0.3 < peak_position < 0.5  # R wave sits at ~40% of the beat

    def test_st_elevation_raises_st_segment(self):
        generator = ECGGenerator(seed=3, noise_scale=0.0)
        normal = generator.beat(length=100, st_elevation=0.0)
        elevated = generator.beat(length=100, st_elevation=0.4)
        st_region = slice(50, 60)
        assert elevated[st_region].mean() > normal[st_region].mean() + 0.2

    def test_rejects_tiny_beat(self):
        with pytest.raises(ValueError):
            ECGGenerator().beat(length=8)

    def test_rejects_bad_heart_rate(self):
        with pytest.raises(ValueError):
            ECGGenerator(heart_rate_bpm=10)

    def test_rejects_bad_sampling_rate(self):
        with pytest.raises(ValueError):
            ECGGenerator(sampling_rate=8)


class TestTelemetry:
    def test_shape_and_beat_annotations(self):
        generator = ECGGenerator(seed=4)
        signal, beats = generator.telemetry(10.0, n_leads=2)
        assert signal.shape[0] == 2
        assert signal.shape[1] == 10 * generator.sampling_rate
        assert len(beats) >= 8  # ~72 bpm for 10 s
        for start, end in beats:
            assert 0 <= start < end <= signal.shape[1]

    def test_baseline_wander_increases_per_beat_mean_spread(self):
        generator = ECGGenerator(seed=5)
        wandering, beats = generator.telemetry(12.0, baseline_wander=True, amplitude_modulation=False)
        clean_generator = ECGGenerator(seed=5)
        clean, clean_beats = clean_generator.telemetry(
            12.0, baseline_wander=False, amplitude_modulation=False
        )
        wander_means, _ = beat_statistics(wandering[0], beats)
        clean_means, _ = beat_statistics(clean[0], clean_beats)
        assert np.ptp(wander_means) > 3 * np.ptp(clean_means)

    def test_amplitude_modulation_increases_per_beat_std_spread(self):
        generator = ECGGenerator(seed=6)
        modulated, beats = generator.telemetry(12.0, baseline_wander=False, amplitude_modulation=True)
        clean_generator = ECGGenerator(seed=6)
        clean, clean_beats = clean_generator.telemetry(
            12.0, baseline_wander=False, amplitude_modulation=False
        )
        _, modulated_stds = beat_statistics(modulated[1], beats)
        _, clean_stds = beat_statistics(clean[1], clean_beats)
        assert np.ptp(modulated_stds) > 1.5 * np.ptp(clean_stds)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            ECGGenerator().telemetry(0.0)


class TestBeatStatistics:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        signal = rng.standard_normal(100)
        means, stds = beat_statistics(signal, [(0, 50), (50, 100)])
        assert means[0] == pytest.approx(signal[:50].mean())
        assert stds[1] == pytest.approx(signal[50:].std())

    def test_rejects_empty_beats(self):
        with pytest.raises(ValueError):
            beat_statistics(np.zeros(10), [])

    def test_rejects_out_of_range_interval(self):
        with pytest.raises(ValueError):
            beat_statistics(np.zeros(10), [(5, 20)])

    def test_rejects_2d_signal(self):
        with pytest.raises(ValueError):
            beat_statistics(np.zeros((2, 10)), [(0, 5)])


class TestBeatDataset:
    def test_shape_and_classes(self):
        dataset = make_ecg_beat_dataset(n_per_class=6, length=64)
        assert dataset.series.shape == (12, 64)
        assert set(dataset.classes) == {"normal", "st_elevation"}

    def test_classes_are_separable(self):
        dataset = make_ecg_beat_dataset(n_per_class=15, length=96)
        train = dataset.subset(range(0, 30, 2))
        test = dataset.subset(range(1, 30, 2))
        model = KNeighborsTimeSeriesClassifier().fit(train.series, train.labels)
        assert model.score(test.series, test.labels) >= 0.85

    def test_znormalized_by_default(self):
        dataset = make_ecg_beat_dataset(n_per_class=3)
        assert dataset.verify_znormalized()
