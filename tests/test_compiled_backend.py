"""Unit tests for the compiled kernel tier (repro.distance.kernels + routing).

numba is an *optional* dependency, so everything here must hold without it:
``force_availability(True)`` runs the very same kernel functions interpreted
(the ``@njit`` decorators degrade to passthroughs), which pins the kernel
*algorithms* -- the cascade driver, the rolling-buffer DP, the prefix
accumulation -- to the reference semantics bit-for-bit.  When numba is
genuinely installed the same tests exercise the JIT-compiled machine code.

The load-bearing properties:

* ``compiled_dtw_nearest_neighbors`` returns indices and distances
  bit-identical to the dense float64 reference across channel counts,
  unequal lengths, band specs, ties and ``k``;
* the engine entry points (``batch_prefix_distances``,
  ``ragged_prefix_distances``, ``dtw_pairwise_distances``) return
  bit-identical arrays when routed through the compiled tier;
* without numba the tier degrades to ``"pruned"`` with exactly one
  ``RuntimeWarning`` per process and an introspectable
  :func:`backend_resolution`;
* the query-side LB_Keogh is admissible and its counter is a sub-bucket of
  the Keogh partition bucket;
* :class:`EnvelopeCache` reuses train-side envelopes across searches and
  self-invalidates on refit;
* the :mod:`repro.memory` thread knob resolves override > env > cpu count.
"""

import warnings

import numpy as np
import pytest

from repro import memory
from repro.distance import backends
from repro.distance import kernels
from repro.distance.backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    BackendResolution,
    backend_resolution,
    compiled_dtw_nearest_neighbors,
    pruned_dtw_nearest_neighbors,
    set_backend,
    use_backend,
)
from repro.distance.dtw import EnvelopeCache, dtw_band_envelopes, dtw_distance, lb_keogh
from repro.distance.engine import (
    PrefixDTWEngine,
    _stable_k_smallest,
    batch_prefix_distances,
    dtw_nearest_neighbors,
    dtw_pairwise_distances,
    ragged_prefix_distances,
)
from repro.distance.neighbors import KNeighborsTimeSeriesClassifier


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    """Default backend, no env override, no availability override, warning re-armed."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    monkeypatch.delenv(memory.THREAD_COUNT_ENV_VAR, raising=False)
    set_backend(None)
    memory.set_thread_count(None)
    kernels.force_availability(None)
    monkeypatch.setattr(backends, "_FALLBACK_WARNED", False)
    yield
    set_backend(None)
    memory.set_thread_count(None)
    kernels.force_availability(None)


@pytest.fixture
def interpreted_kernels():
    """Force the kernel tier on; without numba the kernels run interpreted."""
    kernels.force_availability(True)
    yield
    kernels.force_availability(None)


@pytest.fixture
def random_walks():
    rng = np.random.default_rng(7)
    queries = rng.standard_normal((8, 40)).cumsum(axis=1)
    train = rng.standard_normal((12, 40)).cumsum(axis=1)
    return queries, train


@pytest.fixture
def unequal_walks():
    rng = np.random.default_rng(8)
    queries = rng.standard_normal((6, 37)).cumsum(axis=1)
    train = rng.standard_normal((10, 52)).cumsum(axis=1)
    return queries, train


@pytest.fixture
def multichannel_walks():
    rng = np.random.default_rng(9)
    queries = rng.standard_normal((5, 30, 3)).cumsum(axis=1)
    train = rng.standard_normal((9, 30, 3)).cumsum(axis=1)
    return queries, train


def _dense_topk(queries, train, window, k):
    distances = dtw_pairwise_distances(queries, train, window=window, backend="reference")
    return _stable_k_smallest(distances, k)


class TestBackendRegistration:
    def test_compiled_is_a_registered_backend(self):
        assert BACKENDS == ("reference", "pruned", "compiled")

    def test_set_backend_accepts_compiled(self):
        set_backend("compiled")
        assert backends.active_backend() == "compiled"

    def test_env_selects_compiled(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
        assert backends.active_backend() == "compiled"

    def test_resolution_of_non_compiled_backends_is_identity(self):
        for name in ("reference", "pruned"):
            res = backend_resolution(name)
            assert isinstance(res, BackendResolution)
            assert res.requested == name
            assert res.resolved == name
            assert res.reason is None

    def test_resolution_reads_active_backend_by_default(self):
        set_backend("pruned")
        assert backend_resolution().requested == "pruned"

    def test_forced_available_resolves_to_compiled(self, interpreted_kernels):
        res = backend_resolution("compiled")
        assert res.resolved == "compiled"
        assert res.compiled_available is True
        assert res.reason is None

    def test_forced_unavailable_resolves_to_pruned(self):
        kernels.force_availability(False)
        res = backend_resolution("compiled")
        assert res.requested == "compiled"
        assert res.resolved == "pruned"
        assert res.compiled_available is False
        assert res.reason

    def test_resolution_never_warns(self):
        kernels.force_availability(False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend_resolution("compiled")

    def test_force_availability_rejects_non_bool(self):
        with pytest.raises(TypeError):
            kernels.force_availability(1)

    def test_availability_reflects_numba_without_override(self):
        assert kernels.available() is kernels.NUMBA_AVAILABLE


class TestCompiledEquivalence:
    """Kernel-tier searches are bit-identical to the dense float64 reference."""

    @pytest.mark.parametrize("window", [None, 5, 0.1, 0])
    def test_equal_length_single_channel(self, interpreted_kernels, random_walks, window):
        queries, train = random_walks
        idx_ref, dist_ref = _dense_topk(queries, train, window, 1)
        idx, dist, stats = compiled_dtw_nearest_neighbors(
            queries, train, window=window, return_stats=True
        )
        np.testing.assert_array_equal(idx, idx_ref)
        np.testing.assert_array_equal(dist, dist_ref)
        assert stats.backend == "compiled"

    def test_unequal_lengths(self, interpreted_kernels, unequal_walks):
        queries, train = unequal_walks
        idx_ref, dist_ref = _dense_topk(queries, train, 0.15, 1)
        idx, dist = compiled_dtw_nearest_neighbors(queries, train, window=0.15)
        np.testing.assert_array_equal(idx, idx_ref)
        np.testing.assert_array_equal(dist, dist_ref)

    def test_multichannel(self, interpreted_kernels, multichannel_walks):
        queries, train = multichannel_walks
        idx_ref, dist_ref = _dense_topk(queries, train, 0.1, 1)
        idx, dist = compiled_dtw_nearest_neighbors(queries, train, window=0.1)
        np.testing.assert_array_equal(idx, idx_ref)
        np.testing.assert_array_equal(dist, dist_ref)

    @pytest.mark.parametrize("k", [1, 3])
    def test_k_neighbors(self, interpreted_kernels, random_walks, k):
        queries, train = random_walks
        idx_ref, dist_ref = _dense_topk(queries, train, 0.1, k)
        idx, dist = compiled_dtw_nearest_neighbors(
            queries, train, window=0.1, n_neighbors=k
        )
        assert idx.shape == (queries.shape[0], k)
        np.testing.assert_array_equal(idx, idx_ref)
        np.testing.assert_array_equal(dist, dist_ref)

    def test_exact_ties_break_lexicographically(self, interpreted_kernels):
        rng = np.random.default_rng(11)
        base = rng.standard_normal(24).cumsum()
        train = np.stack([base, base + 3.0, base, base - 2.0])
        queries = np.stack([base, base + 3.0])
        idx, dist = compiled_dtw_nearest_neighbors(
            queries, train, window=0.1, n_neighbors=3
        )
        # query 0 ties exactly with train rows 0 and 2 at distance zero.
        np.testing.assert_array_equal(idx[0, :2], [0, 2])
        assert dist[0, 0] == 0.0 and dist[0, 1] == 0.0

    def test_float32_close_to_reference(self, interpreted_kernels, random_walks):
        queries, train = random_walks
        idx, dist = compiled_dtw_nearest_neighbors(
            queries, train, window=0.1, dtype=np.float32
        )
        idx_ref, dist_ref = _dense_topk(queries, train, 0.1, 1)
        np.testing.assert_array_equal(idx, idx_ref)
        np.testing.assert_allclose(dist, dist_ref, rtol=1e-5)

    def test_tiny_inputs(self, interpreted_kernels):
        queries = np.array([[0.0, 1.0, 2.0]])
        train = np.array([[2.0, 1.0, 0.0], [0.0, 1.0, 2.0]])
        idx, dist = compiled_dtw_nearest_neighbors(queries, train, window=1)
        assert idx[0, 0] == 1
        assert dist[0, 0] == 0.0

    def test_matches_pruned_tier_exactly(self, interpreted_kernels, random_walks):
        queries, train = random_walks
        idx_p, dist_p, stats_p = pruned_dtw_nearest_neighbors(
            queries, train, window=0.1, return_stats=True
        )
        idx_c, dist_c, stats_c = compiled_dtw_nearest_neighbors(
            queries, train, window=0.1, return_stats=True
        )
        np.testing.assert_array_equal(idx_c, idx_p)
        np.testing.assert_array_equal(dist_c, dist_p)
        # The per-pair scalar kernel abandons more eagerly than the chunked
        # numpy batch, so abandon counts may differ; the partition must hold
        # in both tiers regardless.
        for stats in (stats_p, stats_c):
            assert (
                stats.lb_kim_pruned + stats.lb_keogh_pruned + stats.dp_computed
                == stats.n_pairs
            )

    def test_dtw_nearest_neighbors_routes_compiled(
        self, interpreted_kernels, random_walks
    ):
        queries, train = random_walks
        idx_ref, dist_ref = _dense_topk(queries, train, 0.1, 1)
        with use_backend("compiled"):
            idx, dist, stats = dtw_nearest_neighbors(
                queries, train, window=0.1, return_stats=True
            )
        np.testing.assert_array_equal(idx, idx_ref)
        np.testing.assert_array_equal(dist, dist_ref)
        assert stats.backend == "compiled"


class TestCompiledEngineRoutes:
    """The engine's vectorised entry points ride the kernel tier bit-exactly."""

    def test_batch_prefix_distances(self, interpreted_kernels, random_walks):
        queries, train = random_walks
        lengths = [5, 17, 40]
        expected = batch_prefix_distances(queries, train, lengths)
        with use_backend("compiled"):
            out = batch_prefix_distances(queries, train, lengths)
        np.testing.assert_array_equal(out, expected)

    def test_batch_prefix_distances_multichannel_squared(
        self, interpreted_kernels, multichannel_walks
    ):
        queries, train = multichannel_walks
        lengths = [3, 30]
        expected = batch_prefix_distances(queries, train, lengths, squared=True)
        with use_backend("compiled"):
            out = batch_prefix_distances(queries, train, lengths, squared=True)
        np.testing.assert_array_equal(out, expected)

    def test_ragged_prefix_distances(self, interpreted_kernels, random_walks):
        queries, train = random_walks
        lengths = [3, 40, 17, 9, 1, 25, 40, 12]
        expected = ragged_prefix_distances(queries, train, lengths)
        with use_backend("compiled"):
            out = ragged_prefix_distances(queries, train, lengths)
        np.testing.assert_array_equal(out, expected)

    def test_dtw_pairwise_distances(self, interpreted_kernels, unequal_walks):
        queries, train = unequal_walks
        expected = dtw_pairwise_distances(queries, train, window=0.1)
        with use_backend("compiled"):
            out = dtw_pairwise_distances(queries, train, window=0.1)
        np.testing.assert_array_equal(out, expected)

    def test_explicit_reference_request_stays_dense(
        self, interpreted_kernels, random_walks
    ):
        queries, train = random_walks
        with use_backend("compiled"):
            _, _, stats = dtw_nearest_neighbors(
                queries, train, window=0.1, backend="reference", return_stats=True
            )
        assert stats.backend == "reference"
        assert stats.dp_computed == stats.n_pairs


class TestFallbackWithoutNumba:
    def test_falls_back_to_pruned_with_one_warning(self, random_walks):
        kernels.force_availability(False)
        queries, train = random_walks
        idx_ref, dist_ref = _dense_topk(queries, train, 0.1, 1)
        with pytest.warns(RuntimeWarning, match="pruned"):
            idx, dist, stats = compiled_dtw_nearest_neighbors(
                queries, train, window=0.1, return_stats=True
            )
        assert stats.backend == "pruned"
        np.testing.assert_array_equal(idx, idx_ref)
        np.testing.assert_array_equal(dist, dist_ref)
        # Warned once per process: a second call must stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            compiled_dtw_nearest_neighbors(queries, train, window=0.1)

    def test_engine_routes_fall_back_silently_after_first_warning(self, random_walks):
        kernels.force_availability(False)
        queries, train = random_walks
        expected = dtw_pairwise_distances(queries, train, window=0.1)
        with use_backend("compiled"):
            with pytest.warns(RuntimeWarning):
                out = dtw_pairwise_distances(queries, train, window=0.1)
            np.testing.assert_array_equal(out, expected)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                batch_prefix_distances(queries, train, [10, 20])

    def test_resolution_reports_fallback(self):
        kernels.force_availability(False)
        with use_backend("compiled"):
            res = backend_resolution()
        assert res.requested == "compiled"
        assert res.resolved == "pruned"
        assert res.reason


class TestQuerySideKeogh:
    def test_query_side_bound_is_admissible(self, unequal_walks):
        queries, train = unequal_walks
        m = train.shape[1]
        band = max(abs(queries.shape[1] - m), int(0.2 * m))
        lower_q, upper_q = dtw_band_envelopes(queries, band, query_length=m)
        # Mirror bound: train rows against *query* envelopes.
        bounds = lb_keogh(train, lower_q, upper_q)  # (n_train, n_queries)
        for qi in range(queries.shape[0]):
            for ti in range(train.shape[0]):
                exact = dtw_distance(queries[qi], train[ti], window=band)
                assert bounds[ti, qi] <= exact**2 + 1e-9

    def test_query_counter_is_subset_of_keogh_bucket(self, random_walks):
        queries, train = random_walks
        _, _, stats = pruned_dtw_nearest_neighbors(
            queries, train, window=0.1, return_stats=True
        )
        assert 0 <= stats.lb_keogh_query_pruned <= stats.lb_keogh_pruned
        assert (
            stats.lb_kim_pruned + stats.lb_keogh_pruned + stats.dp_computed
            == stats.n_pairs
        )


class TestEnvelopeCache:
    def test_hits_and_misses(self, random_walks):
        queries, train = random_walks
        cache = EnvelopeCache()
        for _ in range(3):
            pruned_dtw_nearest_neighbors(
                queries, train, window=0.1, envelope_cache=cache
            )
        assert cache.misses == 1
        assert cache.hits == 2
        assert len(cache) == 1

    def test_cached_search_is_bit_identical(self, random_walks):
        queries, train = random_walks
        cache = EnvelopeCache()
        first = pruned_dtw_nearest_neighbors(
            queries, train, window=0.1, envelope_cache=cache
        )
        second = pruned_dtw_nearest_neighbors(
            queries, train, window=0.1, envelope_cache=cache
        )
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_content_fingerprint_invalidates_on_new_data(self, random_walks):
        queries, train = random_walks
        cache = EnvelopeCache()
        pruned_dtw_nearest_neighbors(queries, train, window=0.1, envelope_cache=cache)
        pruned_dtw_nearest_neighbors(
            queries, train + 1.0, window=0.1, envelope_cache=cache
        )
        assert cache.misses == 2
        assert cache.hits == 0

    def test_band_is_part_of_the_key(self, random_walks):
        queries, train = random_walks
        cache = EnvelopeCache()
        pruned_dtw_nearest_neighbors(queries, train, window=4, envelope_cache=cache)
        pruned_dtw_nearest_neighbors(queries, train, window=8, envelope_cache=cache)
        assert cache.misses == 2

    def test_lru_eviction(self):
        rng = np.random.default_rng(13)
        cache = EnvelopeCache(maxsize=2)
        arrays = [rng.standard_normal((4, 20)) for _ in range(3)]
        for arr in arrays:
            cache.envelopes(arr, band=3)
        assert len(cache) == 2
        # Oldest entry evicted: asking for it again is a miss.
        cache.envelopes(arrays[0], band=3)
        assert cache.misses == 4

    def test_clear_resets_counters(self, random_walks):
        queries, train = random_walks
        cache = EnvelopeCache()
        cache.envelopes(train, band=3)
        cache.envelopes(train, band=3)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_classifier_refit_gets_a_fresh_cache(self, random_walks):
        queries, train = random_walks
        labels = np.arange(train.shape[0]) % 2
        clf = KNeighborsTimeSeriesClassifier(metric="dtw", metric_params={"window": 0.1})
        clf.fit(train, labels)
        with use_backend("pruned"):
            clf.predict(queries)
            first_cache = clf._envelope_cache
            assert first_cache is not None and first_cache.misses == 1
            clf.predict(queries)
            assert first_cache.hits >= 1
            clf.fit(train, labels)
            assert clf._envelope_cache is not first_cache

    def test_prefix_dtw_engine_exposes_a_lazy_cache(self, random_walks):
        _, train = random_walks
        engine = PrefixDTWEngine(train, band=3)
        cache = engine.envelope_cache
        assert isinstance(cache, EnvelopeCache)
        assert engine.envelope_cache is cache


class TestThreadKnob:
    def test_default_is_cpu_count(self):
        assert memory.get_thread_count() >= 1

    def test_override_wins(self):
        memory.set_thread_count(3)
        assert memory.get_thread_count() == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(memory.THREAD_COUNT_ENV_VAR, "2")
        assert memory.get_thread_count() == 2

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(memory.THREAD_COUNT_ENV_VAR, "2")
        memory.set_thread_count(5)
        assert memory.get_thread_count() == 5

    def test_none_clears_override(self, monkeypatch):
        memory.set_thread_count(5)
        memory.set_thread_count(None)
        monkeypatch.setenv(memory.THREAD_COUNT_ENV_VAR, "2")
        assert memory.get_thread_count() == 2

    @pytest.mark.parametrize("bad", [0, -1, "two"])
    def test_invalid_values_raise(self, bad):
        with pytest.raises(ValueError):
            memory.set_thread_count(bad)

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv(memory.THREAD_COUNT_ENV_VAR, "fast")
        with pytest.raises(ValueError):
            memory.get_thread_count()

    def test_resolve_per_call(self):
        memory.set_thread_count(4)
        assert memory.resolve_thread_count() == 4
        assert memory.resolve_thread_count(2) == 2


class TestKernelWarmup:
    def test_warmup_runs_interpreted(self, interpreted_kernels):
        from repro.distance.kernels import cascade

        cascade.warmup()
        cascade.warmup(dtype=np.float32)
