"""Unit tests for the streaming early detector."""

import numpy as np
import pytest

from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.data.stream import StreamComposer
from repro.streaming.detector import StreamingEarlyDetector


@pytest.fixture(scope="module")
def fitted_classifier(tiny_two_class):
    series, labels = tiny_two_class
    model = ProbabilityThresholdClassifier(threshold=0.85, min_length=6, checkpoint_step=2)
    return model.fit(series, labels)


@pytest.fixture(scope="module")
def annotated_stream(tiny_two_class):
    series, labels = tiny_two_class
    composer = StreamComposer(
        background=np.zeros(2_000), gap_range=(60, 120), level_match=False, seed=3
    )
    exemplars = [series[0], series[10], series[1], series[11]]
    event_labels = [labels[0], labels[10], labels[1], labels[11]]
    return composer.compose(exemplars, event_labels)


class TestConstruction:
    def test_requires_fitted_classifier(self, tiny_two_class):
        series, labels = tiny_two_class
        with pytest.raises(ValueError):
            StreamingEarlyDetector(ProbabilityThresholdClassifier())

    def test_requires_early_classifier_type(self):
        with pytest.raises(TypeError):
            StreamingEarlyDetector(object())

    def test_parameter_validation(self, fitted_classifier):
        with pytest.raises(ValueError):
            StreamingEarlyDetector(fitted_classifier, stride=0)
        with pytest.raises(ValueError):
            StreamingEarlyDetector(fitted_classifier, normalization="zscore")
        with pytest.raises(ValueError):
            StreamingEarlyDetector(fitted_classifier, max_alarms=0)

    def test_window_length_from_classifier(self, fitted_classifier, tiny_two_class):
        series, _ = tiny_two_class
        detector = StreamingEarlyDetector(fitted_classifier)
        assert detector.window_length == series.shape[1]


class TestDetection:
    def test_detects_embedded_events(self, fitted_classifier, annotated_stream):
        detector = StreamingEarlyDetector(fitted_classifier, stride=4, normalization="none")
        alarms = detector.detect(annotated_stream)
        assert alarms  # the embedded bumps are found
        for alarm in alarms:
            assert 0 <= alarm.position < len(annotated_stream)
            assert alarm.candidate_start <= alarm.position
            assert alarm.label in fitted_classifier.classes_

    def test_alarm_positions_increasing_and_refractory(self, fitted_classifier, annotated_stream):
        detector = StreamingEarlyDetector(
            fitted_classifier, stride=4, refractory=30, normalization="none"
        )
        alarms = detector.detect(annotated_stream)
        positions = [a.position for a in alarms]
        assert positions == sorted(positions)
        assert all(b - a >= 30 for a, b in zip(positions, positions[1:]))

    def test_accepts_plain_array(self, fitted_classifier):
        rng = np.random.default_rng(0)
        alarms = StreamingEarlyDetector(fitted_classifier, stride=8).detect(
            rng.standard_normal(500) * 0.01
        )
        assert isinstance(alarms, list)

    def test_stream_shorter_than_window_rejected(self, fitted_classifier):
        with pytest.raises(ValueError):
            StreamingEarlyDetector(fitted_classifier).detect(np.zeros(10))

    def test_max_alarms_caps_output(self, fitted_classifier, annotated_stream):
        detector = StreamingEarlyDetector(
            fitted_classifier, stride=4, normalization="none", max_alarms=1, refractory=0
        )
        alarms = detector.detect(annotated_stream)
        assert len(alarms) <= 1

    def test_window_normalization_mode(self, fitted_classifier, annotated_stream):
        detector = StreamingEarlyDetector(fitted_classifier, stride=4, normalization="window")
        alarms = detector.detect(annotated_stream)
        assert isinstance(alarms, list)

    def test_causal_normalization_mode(self, fitted_classifier, annotated_stream):
        detector = StreamingEarlyDetector(fitted_classifier, stride=8, normalization="causal")
        alarms = detector.detect(annotated_stream)
        assert isinstance(alarms, list)

    def test_prepare_window_none_is_identity(self, fitted_classifier):
        detector = StreamingEarlyDetector(fitted_classifier, normalization="none")
        window = np.arange(40.0)
        np.testing.assert_allclose(detector._prepare_window(window), window)

    def test_prepare_window_window_mode_is_znormalised(self, fitted_classifier):
        detector = StreamingEarlyDetector(fitted_classifier, normalization="window")
        window = np.arange(40.0) + 100.0
        prepared = detector._prepare_window(window)
        assert abs(prepared.mean()) < 1e-9
        assert abs(prepared.std() - 1.0) < 1e-9

    def test_prepare_window_causal_uses_only_past(self, fitted_classifier):
        detector = StreamingEarlyDetector(fitted_classifier, normalization="causal")
        window = np.arange(40.0)
        modified = window.copy()
        modified[30:] += 1000.0
        a = detector._prepare_window(window)
        b = detector._prepare_window(modified)
        np.testing.assert_allclose(a[:30], b[:30])
