"""Unit tests for the Reliable / LDG early classifiers."""

import numpy as np
import pytest

from repro.classifiers.reliable import LDGReliableEarlyClassifier, ReliableEarlyClassifier

FAST = dict(n_monte_carlo=30, checkpoint_fractions=(0.2, 0.4, 0.6, 0.8, 1.0))


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReliableEarlyClassifier(tau=0.6)
        with pytest.raises(ValueError):
            ReliableEarlyClassifier(shrinkage=1.5)
        with pytest.raises(ValueError):
            ReliableEarlyClassifier(n_monte_carlo=5)
        with pytest.raises(ValueError):
            ReliableEarlyClassifier(checkpoint_fractions=())
        with pytest.raises(ValueError):
            ReliableEarlyClassifier(posterior_tempering=-1.0)
        with pytest.raises(ValueError):
            LDGReliableEarlyClassifier(n_local=2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ReliableEarlyClassifier().predict_partial(np.zeros(10))


class TestGaussianModel:
    def test_class_models_fitted_per_class(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ReliableEarlyClassifier(**FAST).fit(series, labels)
        assert len(model._models) == 2
        priors = [m.prior for m in model._models]
        assert sum(priors) == pytest.approx(1.0)
        for class_model in model._models:
            assert class_model.mean.shape == (series.shape[1],)
            assert class_model.covariance.shape == (series.shape[1], series.shape[1])

    def test_posterior_sums_to_one(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ReliableEarlyClassifier(**FAST).fit(series, labels)
        posterior = model._posterior_given_prefix(series[0][:10], model._models)
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_conditional_suffix_shapes(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ReliableEarlyClassifier(**FAST).fit(series, labels)
        mean, cov = model._models[0].conditional_suffix(series[0][:10])
        suffix = series.shape[1] - 10
        assert mean.shape == (suffix,)
        assert cov.shape == (suffix, suffix)
        # Covariance must be symmetric positive semi-definite (up to ridge).
        assert np.allclose(cov, cov.T)
        assert np.min(np.linalg.eigvalsh(cov)) > -1e-8


class TestPrediction:
    def test_separable_problem_accuracy(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ReliableEarlyClassifier(**FAST).fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9

    def test_triggers_early_on_separable_problem(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ReliableEarlyClassifier(**FAST).fit(series[::2], labels[::2])
        assert model.average_earliness(series[1::2]) < 1.0

    def test_full_prefix_is_always_ready(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ReliableEarlyClassifier(**FAST).fit(series, labels)
        partial = model.predict_partial(series[0])
        assert partial.ready

    def test_smaller_tau_never_triggers_earlier(self, tiny_two_class):
        series, labels = tiny_two_class
        lenient = ReliableEarlyClassifier(tau=0.3, random_state=5, **FAST).fit(series[::2], labels[::2])
        strict = ReliableEarlyClassifier(tau=0.01, random_state=5, **FAST).fit(series[::2], labels[::2])
        lenient_earliness = lenient.average_earliness(series[1::2])
        strict_earliness = strict.average_earliness(series[1::2])
        assert strict_earliness >= lenient_earliness - 0.05

    def test_ldg_variant_works(self, tiny_two_class):
        series, labels = tiny_two_class
        model = LDGReliableEarlyClassifier(n_local=8, **FAST).fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9

    def test_ldg_local_models_cover_both_classes(self, tiny_two_class):
        series, labels = tiny_two_class
        model = LDGReliableEarlyClassifier(n_local=6, **FAST).fit(series, labels)
        local_models = model._models_for_prefix(series[0][:10])
        assert {m.label for m in local_models} == set(model.classes_)

    def test_reliability_estimate_in_unit_interval(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ReliableEarlyClassifier(**FAST).fit(series, labels)
        posterior = model._posterior_given_prefix(series[0][:12], model._models)
        label = max(posterior, key=posterior.get)
        reliability = model._estimate_reliability(series[0][:12], label, model._models, posterior)
        assert 0.0 <= reliability <= 1.0
