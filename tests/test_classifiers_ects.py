"""Unit tests for ECTS and RelaxedECTS."""

import numpy as np
import pytest

from repro.classifiers.ects import ECTSClassifier, RelaxedECTSClassifier


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ECTSClassifier(min_support=-0.1)
        with pytest.raises(ValueError):
            ECTSClassifier(min_support=1.5)
        with pytest.raises(ValueError):
            ECTSClassifier(min_length=0)
        with pytest.raises(ValueError):
            ECTSClassifier(checkpoint_step=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ECTSClassifier().predict_partial(np.zeros(10))


class TestTraining:
    def test_mpls_within_valid_range(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECTSClassifier(checkpoint_step=2).fit(series, labels)
        assert model.mpl_ is not None
        assert np.all(model.mpl_ >= model.min_length)
        assert np.all(model.mpl_ <= series.shape[1])

    def test_support_within_unit_interval(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECTSClassifier(checkpoint_step=2).fit(series, labels)
        assert model.support_ is not None
        assert np.all(model.support_ >= 0.0)
        assert np.all(model.support_ <= 1.0)

    def test_relaxed_mpls_never_longer_than_strict(self, tiny_two_class):
        series, labels = tiny_two_class
        strict = ECTSClassifier(checkpoint_step=2).fit(series, labels)
        relaxed = RelaxedECTSClassifier(checkpoint_step=2).fit(series, labels)
        assert np.all(relaxed.mpl_ <= strict.mpl_)

    def test_high_min_support_disables_some_exemplars(self, tiny_two_class):
        series, labels = tiny_two_class
        permissive = ECTSClassifier(min_support=0.0, checkpoint_step=2).fit(series, labels)
        strict = ECTSClassifier(min_support=0.9, checkpoint_step=2).fit(series, labels)
        assert strict._eligible.sum() <= permissive._eligible.sum()


class TestPrediction:
    def test_separable_problem_accuracy(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECTSClassifier(checkpoint_step=2).fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9

    def test_triggers_before_full_length_on_separable_problem(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECTSClassifier(checkpoint_step=2).fit(series[::2], labels[::2])
        assert model.average_earliness(series[1::2]) < 1.0

    def test_relaxed_at_least_as_early_as_strict(self, tiny_two_class):
        series, labels = tiny_two_class
        strict = ECTSClassifier(checkpoint_step=2).fit(series[::2], labels[::2])
        relaxed = RelaxedECTSClassifier(checkpoint_step=2).fit(series[::2], labels[::2])
        assert relaxed.average_earliness(series[1::2]) <= strict.average_earliness(series[1::2]) + 1e-9

    def test_partial_prediction_fields(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECTSClassifier(checkpoint_step=2).fit(series, labels)
        partial = model.predict_partial(series[0][:10])
        assert partial.label in model.classes_
        assert 0.0 <= partial.confidence <= 1.0
        assert sum(partial.probabilities.values()) == pytest.approx(1.0)

    def test_gunpoint_accuracy_band(self, gunpoint_medium):
        train, test = gunpoint_medium
        model = ECTSClassifier(min_support=0.0, checkpoint_step=2)
        model.fit(train.series, train.labels)
        accuracy = model.score(test.series, test.labels)
        assert accuracy >= 0.7

    def test_denormalization_hurts_accuracy(self, gunpoint_medium):
        from repro.data.denormalize import denormalize_dataset

        train, test = gunpoint_medium
        model = ECTSClassifier(min_support=0.0, checkpoint_step=2)
        model.fit(train.series, train.labels)
        clean = model.score(test.series, test.labels)
        shifted = denormalize_dataset(test, seed=1)
        perturbed = model.score(shifted.series, shifted.labels)
        assert perturbed < clean
