"""Unit tests for the CBF-like and Trace-like generators (padding conventions)."""

import numpy as np
import pytest

from repro.data.ucr_like import (
    CBFGenerator,
    TraceLikeGenerator,
    make_cbf_dataset,
    make_trace_dataset,
)
from repro.distance.neighbors import KNeighborsTimeSeriesClassifier


class TestCBFGenerator:
    def test_exemplar_shapes_and_classes(self):
        generator = CBFGenerator(seed=1)
        for label in CBFGenerator.CLASSES:
            assert generator.exemplar(label).shape == (128,)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            CBFGenerator().exemplar("square")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CBFGenerator(length=10)
        with pytest.raises(ValueError):
            CBFGenerator(pad_fraction=0.95)
        with pytest.raises(ValueError):
            CBFGenerator(noise_scale=-1)

    def test_padding_region_is_flat(self):
        generator = CBFGenerator(pad_fraction=0.4, seed=2)
        exemplar = generator.exemplar("cylinder")
        pad_start = int(128 * 0.6)
        assert np.std(exemplar[pad_start:]) < 3 * generator.noise_scale

    def test_deterministic_given_seed(self):
        a = CBFGenerator(seed=5).generate(4, seed=5)
        b = CBFGenerator(seed=5).generate(4, seed=5)
        np.testing.assert_allclose(a.series, b.series)

    def test_dataset_is_separable(self):
        dataset = make_cbf_dataset(n_per_class=20, seed=3)
        train = dataset.subset(range(0, dataset.n_exemplars, 2))
        test = dataset.subset(range(1, dataset.n_exemplars, 2))
        model = KNeighborsTimeSeriesClassifier().fit(train.series, train.labels)
        assert model.score(test.series, test.labels) >= 0.85

    def test_pad_fraction_recorded_in_metadata(self):
        dataset = make_cbf_dataset(n_per_class=3, pad_fraction=0.25)
        assert dataset.metadata["pad_fraction"] == 0.25


class TestTraceLikeGenerator:
    def test_exemplar_shapes_and_classes(self):
        generator = TraceLikeGenerator(seed=1)
        for label in TraceLikeGenerator.CLASSES:
            assert generator.exemplar(label).shape == (150,)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            TraceLikeGenerator().exemplar("meltdown")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TraceLikeGenerator(length=10)
        with pytest.raises(ValueError):
            TraceLikeGenerator(pad_fraction=0.95)

    def test_step_classes_persist_into_tail(self):
        generator = TraceLikeGenerator(seed=4, noise_scale=0.0)
        up = generator.exemplar("step_up")
        down = generator.exemplar("step_down")
        assert up[-10:].mean() > 0.5
        assert down[-10:].mean() < -0.5

    def test_dataset_is_separable(self):
        dataset = make_trace_dataset(n_per_class=15, seed=3)
        train = dataset.subset(range(0, dataset.n_exemplars, 2))
        test = dataset.subset(range(1, dataset.n_exemplars, 2))
        model = KNeighborsTimeSeriesClassifier().fit(train.series, train.labels)
        assert model.score(test.series, test.labels) >= 0.85

    def test_four_classes_present(self):
        dataset = make_trace_dataset(n_per_class=3)
        assert dataset.n_classes == 4
