"""Unit tests for the cost/benefit and prior-probability criteria."""

import pytest

from repro.core.criteria import CostBenefitCriterion, PriorProbabilityCriterion
from repro.streaming.costs import CostModel
from repro.streaming.metrics import StreamingEvaluation


def _evaluation(tp: int, fp: int, fn: int) -> StreamingEvaluation:
    return StreamingEvaluation(
        n_alarms=tp + fp,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        precision=tp / (tp + fp) if tp + fp else 0.0,
        recall=tp / (tp + fn) if tp + fn else 0.0,
        false_positives_per_true_positive=fp / tp if tp else (float("inf") if fp else 0.0),
        false_alarms_per_1000_samples=0.0,
        mean_fraction_of_event_seen=None,
        stream_length=100_000,
    )


class TestCostBenefitCriterion:
    def test_good_detector_passes(self):
        result = CostBenefitCriterion().evaluate(_evaluation(tp=10, fp=5, fn=0))
        assert result.passed
        assert result.name == "cost_benefit"
        assert result.severity == pytest.approx(0.0)

    def test_bad_detector_fails(self):
        result = CostBenefitCriterion().evaluate(_evaluation(tp=1, fp=100, fn=3))
        assert not result.passed
        assert result.severity > 0.5
        assert "false positives" in result.summary

    def test_no_true_positives_maximal_severity(self):
        result = CostBenefitCriterion().evaluate(_evaluation(tp=0, fp=10, fn=5))
        assert not result.passed
        assert result.severity == 1.0

    def test_custom_cost_model(self):
        criterion = CostBenefitCriterion(CostModel(event_cost=100.0, action_cost=100.0))
        result = criterion.evaluate(_evaluation(tp=5, fp=1, fn=0))
        # An action as expensive as the event it averts can never net a saving.
        assert not result.passed or result.details["net_saving"] >= 0

    def test_details_contain_numbers(self):
        result = CostBenefitCriterion().evaluate(_evaluation(tp=2, fp=3, fn=1))
        assert "net_saving" in result.details
        assert "break_even_false_positives_per_true_positive" in result.details


class TestPriorProbabilityCriterion:
    def test_common_event_passes(self):
        result = PriorProbabilityCriterion().evaluate(
            event_prior=0.2, per_window_false_positive_rate=0.01
        )
        assert result.passed
        assert result.name == "prior_probability"

    def test_rare_event_fails(self):
        # A 0.01% prior with a 1% per-window false-positive rate means ~100
        # false alarms for every true event -- the paper's core arithmetic.
        result = PriorProbabilityCriterion().evaluate(
            event_prior=0.0001, per_window_false_positive_rate=0.01
        )
        assert not result.passed
        assert result.details["expected_false_positives_per_true_positive"] > 50

    def test_zero_prior_infinite_ratio(self):
        result = PriorProbabilityCriterion().evaluate(
            event_prior=0.0, per_window_false_positive_rate=0.01
        )
        assert not result.passed
        assert result.severity == 1.0

    def test_perfect_detector_with_zero_fpr_passes(self):
        result = PriorProbabilityCriterion().evaluate(
            event_prior=0.001, per_window_false_positive_rate=0.0
        )
        assert result.passed

    def test_validation(self):
        criterion = PriorProbabilityCriterion()
        with pytest.raises(ValueError):
            criterion.evaluate(event_prior=1.5, per_window_false_positive_rate=0.1)
        with pytest.raises(ValueError):
            criterion.evaluate(event_prior=0.5, per_window_false_positive_rate=-0.1)
        with pytest.raises(ValueError):
            criterion.evaluate(
                event_prior=0.5, per_window_false_positive_rate=0.1, per_window_true_positive_rate=2.0
            )
