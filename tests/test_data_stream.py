"""Unit tests for the stream composer and its annotations."""

import numpy as np
import pytest

from repro.data.random_walk import random_walk_background
from repro.data.stream import ComposedStream, GroundTruthEvent, StreamComposer


class TestGroundTruthEvent:
    def test_length_and_contains(self):
        event = GroundTruthEvent(start=10, end=20, label="x")
        assert event.length == 10
        assert event.contains(10)
        assert event.contains(19)
        assert not event.contains(20)

    def test_overlaps(self):
        event = GroundTruthEvent(start=10, end=20, label="x")
        assert event.overlaps(15, 25)
        assert event.overlaps(0, 11)
        assert not event.overlaps(20, 30)
        assert event.overlap_length(15, 25) == 5

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            GroundTruthEvent(start=5, end=5, label="x")
        with pytest.raises(ValueError):
            GroundTruthEvent(start=-1, end=5, label="x")


class TestComposedStream:
    def test_events_sorted_and_validated(self):
        values = np.zeros(100)
        events = [
            GroundTruthEvent(start=50, end=60, label="b"),
            GroundTruthEvent(start=10, end=20, label="a"),
        ]
        stream = ComposedStream(values=values, events=events)
        assert [e.label for e in stream.events] == ["a", "b"]

    def test_event_past_end_rejected(self):
        with pytest.raises(ValueError):
            ComposedStream(values=np.zeros(30), events=[GroundTruthEvent(0, 50, "a")])

    def test_event_at(self):
        stream = ComposedStream(
            values=np.zeros(100), events=[GroundTruthEvent(10, 20, "a")]
        )
        assert stream.event_at(15).label == "a"
        assert stream.event_at(5) is None

    def test_extract_and_window(self):
        values = np.arange(50.0)
        stream = ComposedStream(values=values, events=[GroundTruthEvent(10, 15, "a")])
        np.testing.assert_allclose(stream.extract(stream.events[0]), values[10:15])
        np.testing.assert_allclose(stream.window(5, 4), values[5:9])
        with pytest.raises(IndexError):
            stream.window(48, 5)

    def test_background_fraction(self):
        stream = ComposedStream(
            values=np.zeros(100), events=[GroundTruthEvent(0, 25, "a")]
        )
        assert stream.background_fraction() == pytest.approx(0.75)

    def test_labels_and_events_with_label(self):
        stream = ComposedStream(
            values=np.zeros(100),
            events=[GroundTruthEvent(0, 10, "a"), GroundTruthEvent(20, 30, "b")],
        )
        assert stream.labels() == ("a", "b")
        assert len(stream.events_with_label("a")) == 1


class TestStreamComposer:
    def _exemplars(self):
        rng = np.random.default_rng(0)
        return [np.sin(np.linspace(0, 6, 50)) + 0.01 * rng.standard_normal(50) for _ in range(4)]

    def test_compose_event_count_and_order(self):
        composer = StreamComposer(background=np.zeros(500), gap_range=(10, 20), seed=1)
        stream = composer.compose(self._exemplars(), ["a", "b", "a", "b"])
        assert stream.n_events == 4
        assert [e.label for e in stream.events] == ["a", "b", "a", "b"]

    def test_events_do_not_overlap(self):
        composer = StreamComposer(background=np.zeros(500), gap_range=(5, 15), seed=2)
        stream = composer.compose(self._exemplars(), list("abab"))
        for first, second in zip(stream.events, stream.events[1:]):
            assert first.end <= second.start

    def test_event_extents_match_exemplar_length(self):
        composer = StreamComposer(background=np.zeros(500), gap_range=(5, 15), seed=3)
        stream = composer.compose(self._exemplars(), list("abab"))
        for event in stream.events:
            assert event.length == 50

    def test_level_match_disabled_preserves_values(self):
        exemplars = self._exemplars()
        composer = StreamComposer(
            background=np.zeros(200), gap_range=(5, 10), level_match=False, seed=4
        )
        stream = composer.compose(exemplars[:1], ["a"])
        event = stream.events[0]
        np.testing.assert_allclose(stream.extract(event), exemplars[0])

    def test_callable_background(self):
        composer = StreamComposer(
            background=random_walk_background(smoothing=4), gap_range=(50, 80), seed=5
        )
        stream = composer.compose(self._exemplars(), list("abab"))
        assert stream.background_fraction() > 0.2

    def test_label_count_mismatch_rejected(self):
        composer = StreamComposer(background=np.zeros(100), seed=6)
        with pytest.raises(ValueError):
            composer.compose(self._exemplars(), ["a"])

    def test_compose_from_dataset(self):
        rng = np.random.default_rng(7)
        series = rng.standard_normal((6, 30))
        labels = np.asarray(["x", "x", "x", "y", "y", "y"])
        composer = StreamComposer(background=np.zeros(300), gap_range=(10, 30), seed=7)
        stream = composer.compose_from_dataset(series, labels, n_events=5)
        assert stream.n_events == 5
        assert set(e.label for e in stream.events) <= {"x", "y"}

    def test_bad_gap_range_rejected(self):
        with pytest.raises(ValueError):
            StreamComposer(background=np.zeros(10), gap_range=(10, 5))
