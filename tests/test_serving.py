"""Equivalence-first test harness for the multi-tenant serving layer.

The load-bearing guarantee: for every admitted stream,
:class:`repro.serving.engine.ServingEngine` -- which defers all classifier
work to window completion and batches it across streams and tenants --
produces the *identical* alarm list to a dedicated per-stream
:class:`repro.streaming.online.StreamingSession` fed the same samples
(exact ``position``/``candidate_start``/``label``/``prefix_length``,
confidence to 1e-10), across classifiers, normalisation modes, refractory
settings, saturation and interleaved chunk-arrival orders.

On top of the equivalence suite: a seeded fuzz of push/flush/finalize/evict
interleavings asserting the cross-tenant isolation and bookkeeping
invariants, deterministic load-shedding/backpressure unit tests, registry
fingerprinting/warm-reload tests, and the duplicate-stream-id guards on the
evaluation helpers.
"""

import numpy as np
import pytest

from repro.classifiers.ects import ECTSClassifier
from repro.classifiers.teaser import TEASERClassifier
from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.evaluation.earliness import evaluate_early_classifier
from repro.runtime.cache import PrepareCache
from repro.serving import (
    ModelRegistry,
    ServingEngine,
    TenantConfig,
    fit_fingerprint,
)
from repro.streaming.metrics import StreamingEvaluation, merge_evaluations
from repro.streaming.online import StreamingSession, incremental_causal_znormalize

from tests.test_streaming_online import assert_alarms_equivalent


# --------------------------------------------------------------------------
# fixtures
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def threshold_classifier(tiny_two_class):
    series, labels = tiny_two_class
    model = ProbabilityThresholdClassifier(threshold=0.85, min_length=6, checkpoint_step=2)
    return model.fit(series, labels)


@pytest.fixture(scope="module")
def ects_classifier(tiny_two_class):
    series, labels = tiny_two_class
    return ECTSClassifier(min_support=0.0, checkpoint_step=4).fit(series, labels)


@pytest.fixture(scope="module")
def teaser_classifier(tiny_two_class):
    series, labels = tiny_two_class
    return TEASERClassifier(n_checkpoints=8).fit(series, labels)


def _make_streams(rng, keys, low=80, high=260, loc=0.3, scale=1.0):
    """One random-length stream per (tenant, stream_id) key."""
    return {
        key: rng.normal(loc, scale, size=int(rng.integers(low, high)))
        for key in keys
    }


def _session_reference(classifier, values, config):
    """What a dedicated per-stream session produces for the same samples."""
    session = StreamingSession(
        classifier,
        stride=config.stride,
        normalization=config.normalization,
        refractory=config.refractory,
        max_alarms=config.max_alarms,
    )
    session.extend(values)
    return session.finalize()


def _interleaved_push(engine, streams, seed, flush_probability=0.3, max_chunk=50):
    """Feed every stream to the engine in a randomised chunk interleaving."""
    order = list(streams)
    offsets = dict.fromkeys(order, 0)
    rng = np.random.default_rng(seed)
    while any(offsets[key] < streams[key].size for key in order):
        key = order[int(rng.integers(len(order)))]
        if offsets[key] >= streams[key].size:
            continue
        n = int(rng.integers(1, max_chunk))
        tenant, stream_id = key
        engine.push(tenant, stream_id, streams[key][offsets[key] : offsets[key] + n])
        offsets[key] += n
        if rng.random() < flush_probability:
            engine.flush()


# --------------------------------------------------------------------------
# the equivalence suite
# --------------------------------------------------------------------------


@pytest.mark.parametrize("normalization", ["none", "window", "causal"])
@pytest.mark.parametrize("refractory", [0, 25])
def test_engine_matches_per_stream_sessions(
    threshold_classifier, ects_classifier, normalization, refractory
):
    """Batched multi-tenant alarms == per-stream session alarms, field by field.

    Two tenants share one model (so the scheduler genuinely coalesces them
    into one batch), a third runs a different classifier; chunks arrive
    interleaved with random sizes and mid-stream flushes.
    """
    config = TenantConfig(stride=7, normalization=normalization, refractory=refractory)
    registry = ModelRegistry()
    registry.register("acme", threshold_classifier, config)
    registry.register("globex", threshold_classifier, config)
    registry.register("initech", ects_classifier, config)
    engine = ServingEngine(registry)

    rng = np.random.default_rng(11)
    keys = [(tenant, s) for tenant in ("acme", "globex", "initech") for s in range(5)]
    streams = _make_streams(rng, keys)
    _interleaved_push(engine, streams, seed=23)
    served = {key: engine.finalize_stream(*key) for key in streams}

    for (tenant, _), values in streams.items():
        classifier = registry_model = (
            ects_classifier if tenant == "initech" else threshold_classifier
        )
        resolved = config.resolve(registry_model)
        reference = _session_reference(classifier, values, resolved)
        assert_alarms_equivalent(reference, served[(tenant, _)])


def test_engine_matches_sessions_for_stateful_trigger(teaser_classifier):
    """TEASER's streak trigger rule survives the deferred-batch execution."""
    config = TenantConfig(stride=9, normalization="causal").resolve(teaser_classifier)
    registry = ModelRegistry()
    registry.register("t", teaser_classifier, config)
    engine = ServingEngine(registry)
    rng = np.random.default_rng(5)
    streams = _make_streams(rng, [("t", s) for s in range(4)], loc=0.8)
    _interleaved_push(engine, streams, seed=8)
    for key, values in streams.items():
        assert_alarms_equivalent(
            _session_reference(teaser_classifier, values, config),
            engine.finalize_stream(*key),
        )


def test_arrival_order_does_not_change_alarms(threshold_classifier):
    """The same streams under different interleavings emit identical alarms."""
    config = TenantConfig(stride=6, normalization="causal")
    rng = np.random.default_rng(2)
    keys = [("a", s) for s in range(4)] + [("b", s) for s in range(4)]
    streams = _make_streams(rng, keys)

    results = []
    for seed in (1, 2, 3):
        registry = ModelRegistry()
        registry.register("a", threshold_classifier, config)
        registry.register("b", threshold_classifier, config)
        engine = ServingEngine(registry)
        _interleaved_push(engine, streams, seed=seed, flush_probability=0.5)
        results.append({key: engine.finalize_stream(*key) for key in streams})
    for other in results[1:]:
        for key in streams:
            assert_alarms_equivalent(results[0][key], other[key])


def test_saturation_matches_session(threshold_classifier):
    """max_alarms saturation: the engine stops exactly where a session stops."""
    config = TenantConfig(stride=5, normalization="none", refractory=0, max_alarms=3)
    registry = ModelRegistry()
    registry.register("t", threshold_classifier, config)
    engine = ServingEngine(registry)
    # A stream that triggers on every candidate: an endless "up" bump train.
    rng = np.random.default_rng(1)
    t = np.arange(400, dtype=float)
    values = np.exp(-0.5 * (((t % 40) - 12.0) / 3.0) ** 2) + 0.05 * rng.standard_normal(400)
    for offset in range(0, 400, 37):
        engine.push("t", "s", values[offset : offset + 37])
        engine.flush()
    served = engine.finalize_stream("t", "s")
    reference = _session_reference(
        threshold_classifier, values, config.resolve(threshold_classifier)
    )
    assert len(reference) == 3
    assert_alarms_equivalent(reference, served)
    # Saturated streams keep accepting (and counting) samples silently.
    assert engine.metrics().alarms_emitted == 3


def test_stream_state_mirrors_session_export(threshold_classifier):
    """The engine's stream snapshot matches a session's exported state."""
    config = TenantConfig(stride=7, normalization="causal").resolve(threshold_classifier)
    registry = ModelRegistry()
    registry.register("t", threshold_classifier, config)
    engine = ServingEngine(registry)
    session = StreamingSession(
        threshold_classifier,
        stride=config.stride,
        normalization=config.normalization,
        refractory=config.refractory,
    )
    values = np.random.default_rng(4).normal(size=95)
    engine.push("t", "s", values)
    engine.flush()
    session.extend(values)
    state = engine.stream_state("t", "s")
    reference = session.export_state()
    assert state.n_samples == reference.n_samples
    assert state.open_candidate_starts == reference.open_candidate_starts
    assert state.n_alarms == reference.n_alarms
    assert state.saturated == reference.saturated


# --------------------------------------------------------------------------
# fuzz: interleaved multi-tenant lifecycles
# --------------------------------------------------------------------------


def test_fuzzed_lifecycles_preserve_invariants(threshold_classifier, ects_classifier):
    """Random push/flush/finalize/evict interleavings keep every invariant.

    Invariants checked after every random operation and at the end:

    * no cross-tenant leakage -- each finalized stream's alarms equal its
      own dedicated session's alarms, regardless of what other tenants did;
    * monotone progress -- a stream's sample count and alarm count never
      decrease, and its alarms are confirmed in candidate-start order;
    * shed streams never emit another alarm after the shed point;
    * the candidate accounting identity ``enqueued == pending + evaluated +
      discarded`` holds per tenant, with ``queue_depth == sum(pending)``.
    """
    rng = np.random.default_rng(99)
    tenants = {
        "acme": (threshold_classifier, TenantConfig(stride=6, normalization="causal")),
        "globex": (threshold_classifier, TenantConfig(stride=9, normalization="none", refractory=0)),
        "initech": (ects_classifier, TenantConfig(stride=11, normalization="window")),
    }
    registry = ModelRegistry()
    for tenant, (model, config) in tenants.items():
        registry.register(tenant, model, config)
    engine = ServingEngine(registry, max_pending=60)

    keys = [(tenant, s) for tenant in tenants for s in range(7)]
    streams = _make_streams(rng, keys, low=120, high=320)
    offsets = dict.fromkeys(keys, 0)
    finalized: dict = {}
    shed_alarm_counts: dict = {}
    last_counts: dict = {}
    evicted: set = set()

    def check_invariants():
        snapshot = engine.metrics()
        assert snapshot.queue_depth <= snapshot.max_pending
        assert snapshot.queue_depth == snapshot.candidates_pending
        for tenant_slice in snapshot.tenants:
            assert tenant_slice.candidates_enqueued == (
                tenant_slice.candidates_pending
                + tenant_slice.candidates_evaluated
                + tenant_slice.candidates_discarded
            )
        for key in engine.streams():
            state = engine.stream_state(*key)
            previous_samples, previous_alarms = last_counts.get(key, (0, 0))
            assert state.n_samples >= previous_samples
            assert state.n_alarms >= previous_alarms
            last_counts[key] = (state.n_samples, state.n_alarms)
            if key in shed_alarm_counts:
                # A shed stream's alarm history is frozen at the shed point.
                assert state.n_alarms == shed_alarm_counts[key]
            starts = [a.candidate_start for a in engine.alarms(*key)]
            assert starts == sorted(starts)

    for _ in range(400):
        action = rng.random()
        if action < 0.62:
            key = keys[int(rng.integers(len(keys)))]
            tenant, stream_id = key
            if tenant in evicted or key in finalized or offsets[key] >= streams[key].size:
                continue
            before_shed = engine.metrics().chunks_shed
            n = int(rng.integers(1, 40))
            admitted = engine.push(tenant, stream_id, streams[key][offsets[key] : offsets[key] + n])
            if admitted == 0 and engine.metrics().chunks_shed > before_shed:
                shed_alarm_counts[key] = len(engine.alarms(*key))
            else:
                offsets[key] += admitted
        elif action < 0.85:
            engine.flush()
        elif action < 0.97:
            open_keys = engine.streams()
            if open_keys:
                key = open_keys[int(rng.integers(len(open_keys)))]
                finalized[key] = engine.finalize_stream(*key)
        elif len(evicted) < 1 and rng.random() < 0.2:
            tenant = "globex"
            engine.evict_tenant(tenant)
            evicted.add(tenant)
        check_invariants()

    for key in engine.streams():
        finalized[key] = engine.finalize_stream(*key)

    # No cross-tenant leakage: every finalized, never-shed stream matches its
    # dedicated session on exactly the samples that were admitted.
    shed_keys = set(shed_alarm_counts)
    for key, served in finalized.items():
        tenant, _ = key
        if key in shed_keys:
            assert len(served) == shed_alarm_counts[key]
            continue
        model, config = tenants[tenant]
        reference = _session_reference(
            model, streams[key][: offsets[key]], config.resolve(model)
        )
        assert_alarms_equivalent(reference, served)


# --------------------------------------------------------------------------
# load shedding and backpressure
# --------------------------------------------------------------------------


def test_queue_depth_is_bounded_and_sheds_whole_chunks(threshold_classifier):
    """Admission never grows the queue past max_pending; drops are whole-chunk."""
    config = TenantConfig(stride=5, normalization="none")
    registry = ModelRegistry()
    registry.register("t", threshold_classifier, config)
    engine = ServingEngine(registry, max_pending=4)

    values = np.random.default_rng(0).normal(size=300)
    admitted = engine.push("t", "a", values[:60])  # 5 candidates > 4 -> shed
    assert admitted == 0
    snapshot = engine.metrics()
    assert snapshot.chunks_shed == 1
    assert snapshot.streams_shed == 1
    assert snapshot.queue_depth == 0

    # A smaller chunk from another stream fits.
    assert engine.push("t", "b", values[:45]) == 45  # 2 candidates
    assert engine.metrics().queue_depth == 2
    # Now fill to the bound and overflow with a third stream.
    assert engine.push("t", "c", values[:45]) == 45
    assert engine.metrics().queue_depth == 4
    assert engine.push("t", "d", values[:60]) == 0
    snapshot = engine.metrics()
    assert snapshot.queue_depth == 4
    assert snapshot.chunks_shed == 2


def test_shed_counter_increments_exactly_once_per_dropped_chunk(threshold_classifier):
    """Every dropped chunk bumps chunks_shed by one, including post-shed pushes."""
    registry = ModelRegistry()
    registry.register("t", threshold_classifier, TenantConfig(stride=5, normalization="none"))
    engine = ServingEngine(registry, max_pending=2)
    values = np.random.default_rng(0).normal(size=100)

    assert engine.push("t", "s", values) == 0  # overflows: dropped, stream shed
    assert engine.metrics().chunks_shed == 1
    # The producer keeps pushing before noticing backpressure: one count each.
    for expected in (2, 3, 4):
        assert engine.push("t", "s", values[:10]) == 0
        assert engine.metrics().chunks_shed == expected
    assert engine.metrics().streams_shed == 1  # the stream was shed once


def test_shed_streams_never_emit_stale_alarms(threshold_classifier, tiny_two_class):
    """Candidates queued before the shed point are discarded, not evaluated."""
    series, _ = tiny_two_class
    registry = ModelRegistry()
    registry.register(
        "t", threshold_classifier, TenantConfig(stride=5, normalization="none")
    )
    engine = ServingEngine(registry, max_pending=8)
    # An "up" exemplar triggers confidently; queue two alarm-worthy windows.
    trigger = np.tile(series[0], 2)
    assert engine.push("t", "s", trigger[:45]) > 0
    assert engine.metrics().queue_depth > 0
    # Overflow the queue from the same stream: the stream is shed with
    # alarm-worthy candidates still queued.
    engine.push("t", "other", trigger[:40])
    assert engine.push("t", "s", trigger[45:]) == 0
    alarms = engine.flush()
    assert all(served.stream_id != "s" for served in alarms)
    snapshot = engine.metrics()
    assert snapshot.tenants[0].candidates_discarded > 0
    assert engine.finalize_stream("t", "s") == []


def test_metrics_snapshot_is_consistent_mid_flight(threshold_classifier):
    """A snapshot taken between pushes satisfies the accounting identity."""
    registry = ModelRegistry()
    registry.register("t", threshold_classifier, TenantConfig(stride=5, normalization="none"))
    engine = ServingEngine(registry, max_pending=50)
    values = np.random.default_rng(0).normal(size=200)
    for offset in range(0, 200, 30):
        engine.push("t", "s", values[offset : offset + 30])
        snapshot = engine.metrics()
        assert snapshot.candidates_enqueued == (
            snapshot.candidates_pending
            + snapshot.candidates_evaluated
            + snapshot.candidates_discarded
        )
        assert snapshot.queue_depth == snapshot.candidates_pending
        assert snapshot.samples_ingested == min(offset + 30, 200)
    engine.flush()
    snapshot = engine.metrics()
    assert snapshot.candidates_pending == 0
    assert snapshot.candidates_evaluated == snapshot.candidates_enqueued


def test_alarm_latency_is_confirmation_lag(threshold_classifier, tiny_two_class):
    """mean_alarm_latency == mean(candidate_start + L - 1 - position)."""
    series, _ = tiny_two_class
    registry = ModelRegistry()
    registry.register("t", threshold_classifier, TenantConfig(stride=40, normalization="none"))
    engine = ServingEngine(registry)
    engine.push("t", "s", np.tile(series[0], 3))
    engine.flush()
    alarms = engine.finalize_stream("t", "s")
    assert alarms
    length = threshold_classifier.train_length_
    expected = np.mean([a.candidate_start + length - 1 - a.position for a in alarms])
    latency = engine.metrics().tenants[0].mean_alarm_latency
    assert latency == pytest.approx(expected)


# --------------------------------------------------------------------------
# lifecycle and identity guards
# --------------------------------------------------------------------------


def test_finalized_stream_id_cannot_be_reused(threshold_classifier):
    registry = ModelRegistry()
    registry.register("t", threshold_classifier, TenantConfig(stride=5))
    engine = ServingEngine(registry)
    engine.push("t", "s", np.zeros(10))
    engine.finalize_stream("t", "s")
    with pytest.raises(ValueError, match="must not be reused"):
        engine.push("t", "s", np.zeros(10))
    # The same id under another tenant is a different stream -- fine.
    registry.register("u", threshold_classifier, TenantConfig(stride=5))
    assert engine.push("u", "s", np.zeros(10)) == 10


def test_evicted_tenant_discards_queued_work(threshold_classifier, tiny_two_class):
    series, _ = tiny_two_class
    registry = ModelRegistry()
    registry.register("t", threshold_classifier, TenantConfig(stride=5, normalization="none"))
    registry.register("u", threshold_classifier, TenantConfig(stride=5, normalization="none"))
    engine = ServingEngine(registry)
    engine.push("t", "s", np.tile(series[0], 2))
    engine.push("u", "s", np.tile(series[0], 2))
    assert engine.evict_tenant("t") == 1
    alarms = engine.flush()
    assert alarms and all(a.tenant == "u" for a in alarms)
    with pytest.raises(KeyError):
        engine.push("t", "s2", np.zeros(5))
    with pytest.raises(ValueError, match="must not be reused"):
        # The evicted tenant's ids stay retired even after re-registration.
        registry.register("t", threshold_classifier, TenantConfig(stride=5))
        engine.push("t", "s", np.zeros(5))


def test_unknown_tenant_and_stream_raise(threshold_classifier):
    registry = ModelRegistry()
    engine = ServingEngine(registry)
    with pytest.raises(KeyError, match="not registered"):
        engine.push("ghost", "s", np.zeros(5))
    registry.register("t", threshold_classifier)
    with pytest.raises(KeyError, match="no open stream"):
        engine.stream_state("t", "missing")
    with pytest.raises(ValueError, match="1-D"):
        engine.push("t", "s", np.zeros((2, 2)))
    with pytest.raises(ValueError, match="non-finite"):
        engine.push("t", "s", np.asarray([1.0, np.nan]))


def test_peek_answers_open_prefixes_without_mutating(ects_classifier):
    registry = ModelRegistry()
    registry.register("t", ects_classifier, TenantConfig(stride=10, normalization="causal"))
    engine = ServingEngine(registry)
    rng = np.random.default_rng(6)
    engine.push("t", "a", rng.normal(size=55))
    engine.push("t", "b", rng.normal(size=73))
    before = engine.metrics()
    partials = engine.peek("t")
    assert set(partials) == {"a", "b"}
    state_a = engine.stream_state("t", "a")
    assert partials["a"].prefix_length == min(
        state_a.n_samples - state_a.open_candidate_starts[0],
        ects_classifier.train_length_,
    )
    after = engine.metrics()
    assert after == before  # observability only: no counters moved
    # The peeked prefix agrees with predict_partial on the causally
    # normalised prefix -- peek applies the tenant's normalisation mode.
    ledger = engine._streams[("t", "a")]
    offset = ledger.next_start - ledger.base
    raw_prefix = np.asarray(
        ledger.buffer[offset : offset + partials["a"].prefix_length]
    )
    reference = ects_classifier.predict_partial(
        incremental_causal_znormalize(raw_prefix)
    )
    assert partials["a"].label == reference.label
    assert partials["a"].ready == reference.ready
    assert partials["a"].confidence == pytest.approx(reference.confidence, abs=1e-10)


# --------------------------------------------------------------------------
# registry: fingerprinting and warm reload
# --------------------------------------------------------------------------


def test_fit_fingerprint_is_content_addressed(tiny_two_class):
    series, labels = tiny_two_class
    base = fit_fingerprint("ECTS", {"min_support": 0.0, "min_length": 3}, series, labels)
    reordered = fit_fingerprint("ECTS", {"min_length": 3, "min_support": 0.0}, series, labels)
    assert base == reordered  # canonicalisation makes key order irrelevant
    base = fit_fingerprint("ECTS", {"min_support": 0.0}, series, labels)
    assert base == fit_fingerprint("ECTS", {"min_support": 0.0}, np.asarray(series, order="F"), labels)
    assert base != fit_fingerprint("ECTS", {"min_support": 0.1}, series, labels)
    assert base != fit_fingerprint("EDSC", {"min_support": 0.0}, series, labels)
    assert base != fit_fingerprint("ECTS", {"min_support": 0.0}, series * 2.0, labels)
    relabelled = list(labels[::-1])
    assert base != fit_fingerprint("ECTS", {"min_support": 0.0}, series, relabelled)


def test_registry_load_or_fit_reloads_warm(tmp_path, tiny_two_class):
    series, labels = tiny_two_class
    cache = PrepareCache(tmp_path / "cache")
    registry = ModelRegistry(cache=cache)
    entry = registry.load_or_fit(
        "t", ProbabilityThresholdClassifier, {"min_length": 6}, series, labels
    )
    assert not entry.warm and registry.cold_fits == 1

    # A new registry (a restarted process) reloads the same fit warm.
    restarted = ModelRegistry(cache=PrepareCache(tmp_path / "cache"))
    warm = restarted.load_or_fit(
        "t", ProbabilityThresholdClassifier, {"min_length": 6}, series, labels
    )
    assert warm.warm and restarted.cold_fits == 0 and restarted.warm_loads == 1
    assert warm.fingerprint == entry.fingerprint
    # The reloaded model serves identical predictions.
    outcome = warm.classifier.predict_early(series[0])
    reference = entry.classifier.predict_early(series[0])
    assert outcome.label == reference.label
    assert outcome.confidence == pytest.approx(reference.confidence)

    # A changed fit config is a different fingerprint: refits cold.
    changed = restarted.load_or_fit(
        "t", ProbabilityThresholdClassifier, {"min_length": 8}, series, labels
    )
    assert not changed.warm and restarted.cold_fits == 1
    assert changed.fingerprint != entry.fingerprint


def test_registry_register_is_idempotent_per_fingerprint(threshold_classifier):
    registry = ModelRegistry()
    first = registry.register("t", threshold_classifier, fingerprint="abc")
    assert registry.register("t", threshold_classifier, fingerprint="abc") is first
    replaced = registry.register("t", threshold_classifier, fingerprint="xyz")
    assert replaced is not first
    with pytest.raises(ValueError, match="fitted"):
        registry.register("u", ProbabilityThresholdClassifier())
    with pytest.raises(KeyError, match="not registered"):
        registry.get("ghost")
    assert registry.tenants() == ["t"]
    registry.evict("t")
    assert "t" not in registry


def test_tenant_config_resolves_session_defaults(threshold_classifier):
    resolved = TenantConfig().resolve(threshold_classifier)
    probe = StreamingSession(threshold_classifier)
    assert resolved.stride == probe.stride
    assert resolved.refractory == probe.refractory
    with pytest.raises(ValueError, match="stride"):
        TenantConfig(stride=0).resolve(threshold_classifier)
    with pytest.raises(ValueError, match="normalization"):
        TenantConfig(normalization="bogus").resolve(threshold_classifier)


# --------------------------------------------------------------------------
# duplicate-id guards on the evaluation helpers
# --------------------------------------------------------------------------


def test_evaluate_early_classifier_rejects_duplicate_ids(threshold_classifier, tiny_two_class):
    series, labels = tiny_two_class
    result = evaluate_early_classifier(
        threshold_classifier, series, labels, ids=list(range(len(labels)))
    )
    assert result.n_exemplars == len(labels)
    with pytest.raises(ValueError, match="duplicate exemplar ids.*double-count"):
        evaluate_early_classifier(
            threshold_classifier, series, labels, ids=[0] * len(labels)
        )
    with pytest.raises(ValueError, match="one entry per exemplar"):
        evaluate_early_classifier(threshold_classifier, series, labels, ids=[1])


def test_merge_evaluations_rejects_duplicate_stream_ids():
    evaluation = StreamingEvaluation(
        n_alarms=1, true_positives=1, false_positives=0, false_negatives=0,
        precision=1.0, recall=1.0, false_positives_per_true_positive=0.0,
        false_alarms_per_1000_samples=0.0, mean_fraction_of_event_seen=0.5,
        stream_length=100,
    )
    merged = merge_evaluations([evaluation, evaluation], stream_ids=["a", "b"])
    assert merged.stream_length == 200
    with pytest.raises(ValueError, match="duplicate stream ids.*double-count"):
        merge_evaluations([evaluation, evaluation], stream_ids=["a", "a"])
    with pytest.raises(ValueError, match="one entry per evaluation"):
        merge_evaluations([evaluation, evaluation], stream_ids=["a"])
