"""Unit tests for the probability-threshold early classifier."""

import numpy as np
import pytest

from repro.classifiers.threshold import ProbabilityThresholdClassifier


class TestConstruction:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            ProbabilityThresholdClassifier(threshold=0.5)
        with pytest.raises(ValueError):
            ProbabilityThresholdClassifier(threshold=1.5)

    def test_other_parameter_validation(self):
        with pytest.raises(ValueError):
            ProbabilityThresholdClassifier(min_length=0)
        with pytest.raises(ValueError):
            ProbabilityThresholdClassifier(checkpoint_step=0)

    def test_min_length_must_be_less_than_series(self, tiny_two_class):
        series, labels = tiny_two_class
        with pytest.raises(ValueError):
            ProbabilityThresholdClassifier(min_length=series.shape[1]).fit(series, labels)


class TestBehaviour:
    def test_triggers_early_on_separable_problem(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ProbabilityThresholdClassifier(threshold=0.8, min_length=4).fit(
            series[::2], labels[::2]
        )
        outcome = model.predict_early(series[1])
        assert outcome.triggered
        assert outcome.trigger_length < series.shape[1]
        assert outcome.confidence >= 0.8

    def test_accuracy_on_separable_problem(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ProbabilityThresholdClassifier(threshold=0.8, min_length=4).fit(
            series[::2], labels[::2]
        )
        assert model.score(series[1::2], labels[1::2]) == 1.0

    def test_higher_threshold_triggers_no_earlier(self, gunpoint_medium):
        train, test = gunpoint_medium
        low = ProbabilityThresholdClassifier(threshold=0.7, min_length=10, checkpoint_step=5)
        high = ProbabilityThresholdClassifier(threshold=0.95, min_length=10, checkpoint_step=5)
        low.fit(train.series, train.labels)
        high.fit(train.series, train.labels)
        low_earliness = low.average_earliness(test.series[:10])
        high_earliness = high.average_earliness(test.series[:10])
        assert high_earliness >= low_earliness - 1e-9

    def test_partial_before_min_length_not_ready(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ProbabilityThresholdClassifier(threshold=0.8, min_length=10).fit(series, labels)
        partial = model.predict_partial(series[0][:5])
        assert not partial.ready
        assert sum(partial.probabilities.values()) == pytest.approx(1.0)

    def test_checkpoints_respect_step(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ProbabilityThresholdClassifier(min_length=5, checkpoint_step=7).fit(series, labels)
        checkpoints = model.checkpoints()
        assert checkpoints[0] == 5
        assert checkpoints[-1] == series.shape[1]
        assert all(b - a in (7, (series.shape[1] - 5) % 7 or 7) for a, b in zip(checkpoints, checkpoints[1:]))

    def test_confidence_at_trigger_meets_threshold(self, gunpoint_medium):
        train, test = gunpoint_medium
        model = ProbabilityThresholdClassifier(threshold=0.85, min_length=10, checkpoint_step=5)
        model.fit(train.series, train.labels)
        outcome = model.predict_early(test.series[0])
        if outcome.triggered:
            assert outcome.confidence >= 0.85
