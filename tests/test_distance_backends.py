"""Unit tests for the distance-backend layer (repro.distance.backends).

The load-bearing property: with float64 accumulation, the pruned
LB_Kim -> LB_Keogh -> early-abandoning-DP cascade returns neighbour indices
*and distances* bit-identical to the dense reference path, across band
specs, unequal lengths, exact ties and ``k``.
"""

import numpy as np
import pytest

from repro.distance.backends import (
    BACKEND_ENV_VAR,
    DTWSearchStats,
    active_backend,
    pruned_dtw_nearest_neighbors,
    set_backend,
    use_backend,
)
from repro.distance.dtw import (
    _resolve_band,
    dtw_band_envelopes,
    dtw_distance,
    lb_keogh,
    lb_kim,
)
from repro.distance.engine import dtw_nearest_neighbors, dtw_pairwise_distances
from repro.distance.neighbors import KNeighborsTimeSeriesClassifier


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Every test starts from the default backend with no env override."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    set_backend(None)
    yield
    set_backend(None)


@pytest.fixture
def random_walks():
    rng = np.random.default_rng(42)
    queries = rng.standard_normal((9, 40)).cumsum(axis=1)
    train = rng.standard_normal((13, 40)).cumsum(axis=1)
    return queries, train


@pytest.fixture
def unequal_walks():
    rng = np.random.default_rng(43)
    queries = rng.standard_normal((7, 50)).cumsum(axis=1)
    train = rng.standard_normal((11, 64)).cumsum(axis=1)
    return queries, train


class TestBackendSwitch:
    def test_default_is_reference(self):
        assert active_backend() == "reference"

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "pruned")
        assert active_backend() == "pruned"

    def test_env_value_is_normalised(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "  Pruned ")
        assert active_backend() == "pruned"

    def test_empty_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert active_backend() == "reference"

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "pruned")
        set_backend("reference")
        assert active_backend() == "reference"
        set_backend(None)
        assert active_backend() == "pruned"

    def test_use_backend_restores_previous_state(self):
        set_backend("reference")
        with use_backend("pruned") as name:
            assert name == "pruned"
            assert active_backend() == "pruned"
        assert active_backend() == "reference"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("pruned"):
                raise RuntimeError("boom")
        assert active_backend() == "reference"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown distance backend"):
            set_backend("fast")
        monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="unknown distance backend"):
            active_backend()

    def test_explicit_backend_argument_wins(self, random_walks, monkeypatch):
        queries, train = random_walks
        monkeypatch.setenv(BACKEND_ENV_VAR, "pruned")
        _, _, stats = dtw_nearest_neighbors(
            queries, train, window=0.1, backend="reference", return_stats=True
        )
        assert stats.pruning_rate == 0.0


class TestEnvelopesAndBounds:
    def _naive_envelopes(self, train, band, n):
        m = train.shape[1]
        lower = np.empty((train.shape[0], n))
        upper = np.empty((train.shape[0], n))
        for i in range(n):
            lo = max(0, i - band)
            hi = min(m - 1, i + band)
            lower[:, i] = train[:, lo : hi + 1].min(axis=1)
            upper[:, i] = train[:, lo : hi + 1].max(axis=1)
        return lower, upper

    @pytest.mark.parametrize("band", [1, 4, 15, 200])
    def test_envelopes_match_naive_loop(self, random_walks, band):
        _, train = random_walks
        lower, upper = dtw_band_envelopes(train, band)
        nl, nu = self._naive_envelopes(train, band, train.shape[1])
        np.testing.assert_array_equal(lower, nl)
        np.testing.assert_array_equal(upper, nu)

    def test_envelopes_match_naive_loop_unequal_lengths(self, unequal_walks):
        queries, train = unequal_walks
        n = queries.shape[1]
        band = _resolve_band(n, train.shape[1], 0.3)
        lower, upper = dtw_band_envelopes(train, band, query_length=n)
        nl, nu = self._naive_envelopes(train, band, n)
        np.testing.assert_array_equal(lower, nl)
        np.testing.assert_array_equal(upper, nu)

    def test_envelope_band_must_cover_length_difference(self, unequal_walks):
        queries, train = unequal_walks
        with pytest.raises(ValueError, match="length difference"):
            dtw_band_envelopes(train, 3, query_length=queries.shape[1])

    @pytest.mark.parametrize("window", [None, 5, 0.1])
    def test_bounds_never_exceed_true_squared_dtw(self, random_walks, window):
        queries, train = random_walks
        band = _resolve_band(queries.shape[1], train.shape[1], window)
        lower, upper = dtw_band_envelopes(train, band)
        kim = lb_kim(queries, train)
        keogh = lb_keogh(queries, lower, upper)
        for qi in range(queries.shape[0]):
            for ti in range(train.shape[0]):
                true_sq = dtw_distance(queries[qi], train[ti], window=window) ** 2
                assert kim[qi, ti] <= true_sq + 1e-9
                assert keogh[qi, ti] <= true_sq + 1e-9

    def test_bounds_admissible_unequal_lengths(self, unequal_walks):
        queries, train = unequal_walks
        window = 0.3
        band = _resolve_band(queries.shape[1], train.shape[1], window)
        lower, upper = dtw_band_envelopes(train, band, query_length=queries.shape[1])
        keogh = lb_keogh(queries, lower, upper)
        kim = lb_kim(queries, train)
        for qi in range(queries.shape[0]):
            for ti in range(train.shape[0]):
                true_sq = dtw_distance(queries[qi], train[ti], window=window) ** 2
                assert max(kim[qi, ti], keogh[qi, ti]) <= true_sq + 1e-9

    def test_lb_keogh_zero_for_series_inside_envelope(self, random_walks):
        _, train = random_walks
        lower, upper = dtw_band_envelopes(train, 5)
        self_bound = lb_keogh(train, lower, upper)
        assert np.all(np.diagonal(self_bound) == 0.0)

    def test_lb_keogh_rejects_mismatched_envelopes(self, random_walks):
        queries, train = random_walks
        lower, upper = dtw_band_envelopes(train, 25, query_length=17)
        with pytest.raises(ValueError):
            lb_keogh(queries, lower, upper)


class TestBackendEquivalence:
    """Pruned vs reference: bit-identical in float64, across the spec grid."""

    @pytest.mark.parametrize("window", [None, 5, 0.1, 0])
    @pytest.mark.parametrize("k", [1, 3])
    def test_equal_length_bitwise_identical(self, random_walks, window, k):
        queries, train = random_walks
        ri, rd = dtw_nearest_neighbors(
            queries, train, window=window, n_neighbors=k, backend="reference"
        )
        pi, pd = dtw_nearest_neighbors(
            queries, train, window=window, n_neighbors=k, backend="pruned"
        )
        np.testing.assert_array_equal(ri, pi)
        np.testing.assert_array_equal(rd, pd)

    @pytest.mark.parametrize("window", [None, 20, 0.3])
    @pytest.mark.parametrize("k", [1, 3])
    def test_unequal_length_bitwise_identical(self, unequal_walks, window, k):
        queries, train = unequal_walks
        ri, rd = dtw_nearest_neighbors(
            queries, train, window=window, n_neighbors=k, backend="reference"
        )
        pi, pd = dtw_nearest_neighbors(
            queries, train, window=window, n_neighbors=k, backend="pruned"
        )
        np.testing.assert_array_equal(ri, pi)
        np.testing.assert_array_equal(rd, pd)

    def test_exact_ties_resolve_to_lowest_index(self, random_walks):
        queries, train = random_walks
        train = train.copy()
        train[7] = train[2]  # exact duplicate at a higher index
        queries = queries.copy()
        queries[0] = train[2]  # and an exact query match
        for k in (1, 3):
            pi, pd = dtw_nearest_neighbors(
                queries, train, window=0.2, n_neighbors=k, backend="pruned"
            )
            ri, rd = dtw_nearest_neighbors(
                queries, train, window=0.2, n_neighbors=k, backend="reference"
            )
            np.testing.assert_array_equal(ri, pi)
            np.testing.assert_array_equal(rd, pd)
            assert pi[0, 0] == 2  # the duplicate's lowest training index
            assert pd[0, 0] == 0.0

    def test_matches_scalar_dtw_distance(self, random_walks):
        queries, train = random_walks
        idx, dist = dtw_nearest_neighbors(
            queries, train, window=0.1, backend="pruned"
        )
        for qi in range(queries.shape[0]):
            scalar = dtw_distance(queries[qi], train[idx[qi, 0]], window=0.1)
            assert dist[qi, 0] == scalar

    def test_float32_mode_close_not_necessarily_identical(self, random_walks):
        queries, train = random_walks
        ri, rd = dtw_nearest_neighbors(
            queries, train, window=0.1, n_neighbors=3, backend="reference"
        )
        pi, pd = dtw_nearest_neighbors(
            queries,
            train,
            window=0.1,
            n_neighbors=3,
            backend="pruned",
            dtype=np.float32,
        )
        np.testing.assert_array_equal(ri, pi)
        np.testing.assert_allclose(pd, rd, rtol=1e-5)

    def test_single_1d_query_promoted(self, random_walks):
        queries, train = random_walks
        idx, dist = dtw_nearest_neighbors(queries[0], train, window=5, backend="pruned")
        assert idx.shape == (1, 1) and dist.shape == (1, 1)

    def test_reference_selection_matches_dense_matrix(self, random_walks):
        queries, train = random_walks
        dense = dtw_pairwise_distances(queries, train, window=0.1)
        idx, dist = dtw_nearest_neighbors(
            queries, train, window=0.1, n_neighbors=2, backend="reference"
        )
        order = np.argsort(dense, axis=1, kind="stable")[:, :2]
        np.testing.assert_array_equal(idx, order)
        np.testing.assert_array_equal(dist, np.take_along_axis(dense, order, axis=1))

    def test_invalid_arguments_rejected(self, random_walks):
        queries, train = random_walks
        with pytest.raises(ValueError):
            dtw_nearest_neighbors(queries, train, n_neighbors=0, backend="pruned")
        with pytest.raises(ValueError):
            dtw_nearest_neighbors(
                queries, train, n_neighbors=train.shape[0] + 1, backend="pruned"
            )
        with pytest.raises(ValueError):
            dtw_nearest_neighbors(queries, train, backend="pruned", dtype=np.int32)
        with pytest.raises(ValueError):
            dtw_nearest_neighbors(queries, train, backend="sparse")


class TestSearchStats:
    def test_counts_partition_the_pair_set(self, random_walks):
        queries, train = random_walks
        _, _, stats = dtw_nearest_neighbors(
            queries, train, window=0.1, backend="pruned", return_stats=True
        )
        assert isinstance(stats, DTWSearchStats)
        assert stats.n_pairs == queries.shape[0] * train.shape[0]
        assert (
            stats.lb_kim_pruned + stats.lb_keogh_pruned + stats.dp_computed
            == stats.n_pairs
        )
        assert 0.0 <= stats.pruning_rate < 1.0
        assert stats.dp_abandoned <= stats.dp_computed
        # The query-side LB_Keogh count is a sub-bucket of the Keogh bucket,
        # not a fourth partition member.
        assert 0 <= stats.lb_keogh_query_pruned <= stats.lb_keogh_pruned

    def test_reference_stats_report_dense_search(self, random_walks):
        queries, train = random_walks
        _, _, stats = dtw_nearest_neighbors(
            queries, train, window=0.1, backend="reference", return_stats=True
        )
        assert stats.dp_computed == stats.n_pairs
        assert stats.pruning_rate == 0.0


class TestKNNRidesTheBackend:
    def test_dtw_metric_same_predictions_under_both_backends(self, monkeypatch):
        rng = np.random.default_rng(44)
        train = rng.standard_normal((16, 30)).cumsum(axis=1)
        labels = np.asarray(["a", "b"] * 8)
        test = train + 0.05 * rng.standard_normal(train.shape)
        model = KNeighborsTimeSeriesClassifier(
            metric="dtw", metric_params={"window": 0.2}
        ).fit(train, labels)
        reference = model.predict(test)
        with use_backend("pruned"):
            np.testing.assert_array_equal(model.predict(test), reference)
        monkeypatch.setenv(BACKEND_ENV_VAR, "pruned")
        np.testing.assert_array_equal(model.predict(test), reference)

    def test_dtw_metric_accepts_unequal_query_length(self):
        rng = np.random.default_rng(45)
        train = rng.standard_normal((10, 32)).cumsum(axis=1)
        labels = np.asarray(["a", "b"] * 5)
        model = KNeighborsTimeSeriesClassifier(
            metric="dtw", metric_params={"window": 10}
        ).fit(train, labels)
        short = rng.standard_normal((4, 26)).cumsum(axis=1)
        for backend in ("reference", "pruned"):
            with use_backend(backend):
                assert model.predict(short).shape == (4,)

    def test_dtw_metric_predict_proba_matches_predict(self):
        rng = np.random.default_rng(46)
        train = rng.standard_normal((12, 28)).cumsum(axis=1)
        labels = np.asarray(["a", "b"] * 6)
        test = rng.standard_normal((5, 28)).cumsum(axis=1)
        with use_backend("pruned"):
            model = KNeighborsTimeSeriesClassifier(
                n_neighbors=3, metric="dtw", metric_params={"window": 0.2}
            ).fit(train, labels)
            predicted = model.predict(test)
            probas = model.predict_proba(test)
        for label, proba in zip(predicted, probas):
            assert max(proba.items(), key=lambda item: item[1])[0] == label

    def test_unknown_metric_param_rejected(self):
        with pytest.raises(ValueError, match="metric_params"):
            KNeighborsTimeSeriesClassifier(metric="dtw", metric_params={"widow": 3})
        with pytest.raises(ValueError, match="metric_params"):
            KNeighborsTimeSeriesClassifier(metric="euclidean", metric_params={"window": 3})


class TestDirectPrunedKernel:
    def test_return_without_stats_is_two_tuple(self, random_walks):
        queries, train = random_walks
        out = pruned_dtw_nearest_neighbors(queries, train, window=5)
        assert len(out) == 2

    def test_small_chunk_sizes_still_exact(self, random_walks):
        queries, train = random_walks
        ri, rd = dtw_nearest_neighbors(
            queries, train, window=0.1, n_neighbors=3, backend="reference"
        )
        pi, pd = pruned_dtw_nearest_neighbors(
            queries, train, window=0.1, n_neighbors=3, chunk_pairs=3
        )
        np.testing.assert_array_equal(ri, pi)
        np.testing.assert_array_equal(rd, pd)

    def test_tiny_lb_block_budget_still_exact(self, random_walks):
        queries, train = random_walks
        ri, rd = dtw_nearest_neighbors(
            queries, train, window=0.1, backend="reference"
        )
        pi, pd = pruned_dtw_nearest_neighbors(
            queries, train, window=0.1, max_block_bytes=1024
        )
        np.testing.assert_array_equal(ri, pi)
        np.testing.assert_array_equal(rd, pd)
