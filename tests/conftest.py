"""Shared fixtures: small, fast synthetic datasets reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.gunpoint import GunPointGenerator
from repro.data.ucr_format import UCRDataset
from repro.data.words import make_word_dataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic random generator for ad-hoc test data."""
    return np.random.default_rng(12345)


def _small_gunpoint(n_train_per_class: int, n_test_per_class: int, length: int, znormalize: bool):
    generator = GunPointGenerator(length=length, seed=7)
    full = generator.generate(n_per_class=n_train_per_class + n_test_per_class, seed=7)
    train_idx: list[int] = []
    test_idx: list[int] = []
    for cls in full.classes:
        cls_idx = np.flatnonzero(full.labels == cls)
        train_idx.extend(cls_idx[:n_train_per_class].tolist())
        test_idx.extend(cls_idx[n_train_per_class:].tolist())
    train = full.subset(train_idx)
    test = full.subset(test_idx)
    if znormalize:
        return train.z_normalized(), test.z_normalized()
    return train, test


@pytest.fixture(scope="session")
def gunpoint_small() -> tuple[UCRDataset, UCRDataset]:
    """A small z-normalised GunPoint-like split (10+10 train, 15+15 test, length 60)."""
    return _small_gunpoint(10, 15, 60, znormalize=True)


@pytest.fixture(scope="session")
def gunpoint_small_raw() -> tuple[UCRDataset, UCRDataset]:
    """The same split in raw (not z-normalised) units."""
    return _small_gunpoint(10, 15, 60, znormalize=False)


@pytest.fixture(scope="session")
def gunpoint_medium() -> tuple[UCRDataset, UCRDataset]:
    """A medium z-normalised split (20+20 train, 30+30 test, length 150)."""
    return _small_gunpoint(20, 30, 150, znormalize=True)


@pytest.fixture(scope="session")
def gunpoint_medium_raw() -> tuple[UCRDataset, UCRDataset]:
    """The same medium split in raw (not z-normalised) units."""
    return _small_gunpoint(20, 30, 150, znormalize=False)


@pytest.fixture(scope="session")
def word_dataset_small() -> UCRDataset:
    """A small cat/dog word dataset in the UCR (z-normalised, padded) format."""
    return make_word_dataset(n_per_class=12, length=150, seed=3)


@pytest.fixture(scope="session")
def tiny_two_class() -> tuple[np.ndarray, np.ndarray]:
    """A trivially separable two-class toy problem.

    Both classes are flat with a localised bump early in the series (upward
    for class "up", downward for class "down"), so every family of early
    classifier in the package -- instance based, shapelet based, Gaussian
    based -- can solve it, and can solve it from an early prefix.
    """
    rng = np.random.default_rng(0)
    length = 40
    t = np.arange(length, dtype=float)
    bump = np.exp(-0.5 * ((t - 12.0) / 3.0) ** 2)

    def noisy(sign: float) -> np.ndarray:
        return sign * bump + 0.05 * rng.standard_normal(length)

    up = np.stack([noisy(+1.0) for _ in range(10)])
    down = np.stack([noisy(-1.0) for _ in range(10)])
    series = np.vstack([up, down])
    labels = np.asarray(["up"] * 10 + ["down"] * 10)
    return series, labels
