"""Integration tests: full pipelines spanning several packages."""

import numpy as np
import pytest

from repro.classifiers import (
    CostAwareEarlyClassifier,
    ECDIREClassifier,
    ECTSClassifier,
    EDSCClassifier,
    FixedTruncationClassifier,
    ProbabilityThresholdClassifier,
    TEASERClassifier,
)
from repro.core.criteria import CostBenefitCriterion, PriorProbabilityCriterion
from repro.core.homophone_analysis import homophone_analysis
from repro.core.inclusion_analysis import analyze_lexical_inclusions
from repro.core.normalization_audit import audit_normalization_sensitivity
from repro.core.prefix_accuracy import compute_prefix_accuracy_curve
from repro.core.prefix_analysis import analyze_lexical_prefixes
from repro.core.report import assess_meaningfulness
from repro.data.chicken import DUSTBATHING, ChickenBehaviorSimulator, dustbathing_template
from repro.data.random_walk import random_walk_background, smoothed_random_walk
from repro.data.stream import StreamComposer
from repro.data.words import LEXICON
from repro.evaluation import evaluate_early_classifier
from repro.streaming import CostModel, StreamingEarlyDetector, evaluate_alarms


class TestTrainDeployEvaluatePipeline:
    """UCR-style training -> streaming deployment -> cost model, end to end."""

    @pytest.fixture(scope="class")
    def pipeline(self, gunpoint_medium):
        train, test = gunpoint_medium
        classifier = TEASERClassifier(n_checkpoints=10)
        classifier.fit(train.series, train.labels)

        target_rows = test.exemplars_of_class("gun")[:6]
        composer = StreamComposer(
            background=random_walk_background(smoothing=16, step_scale=0.3),
            gap_range=(600, 1200),
            seed=13,
        )
        stream = composer.compose(list(target_rows), ["gun"] * len(target_rows))
        detector = StreamingEarlyDetector(classifier, stride=15, normalization="window")
        alarms = detector.detect(stream)
        evaluation = evaluate_alarms(
            [a for a in alarms if a.label == "gun"],
            stream,
            target_labels=("gun",),
            onset_tolerance=40,
        )
        return stream, alarms, evaluation

    def test_detector_raises_alarms(self, pipeline):
        _, alarms, _ = pipeline
        assert alarms

    def test_event_accounting_is_consistent(self, pipeline):
        stream, _, evaluation = pipeline
        n_target_events = len(stream.events_with_label("gun"))
        assert evaluation.true_positives + evaluation.false_negatives == n_target_events

    def test_cost_model_prices_the_deployment(self, pipeline):
        _, _, evaluation = pipeline
        outcome = CostModel().price(evaluation)
        assert outcome.baseline_cost == 1000.0 * (
            evaluation.true_positives + evaluation.false_negatives
        )
        criterion = CostBenefitCriterion().evaluate(evaluation)
        assert criterion.passed == outcome.breaks_even


class TestMeaningfulnessReportPipeline:
    """All four Section 6 criteria computed from scratch for two domains."""

    def test_word_domain_report_is_negative(self, gunpoint_medium):
        train, test = gunpoint_medium
        prefix_result = analyze_lexical_prefixes(["cat", "dog"], LEXICON)
        inclusion_result = analyze_lexical_inclusions(["cat", "dog"], LEXICON)
        audit = audit_normalization_sensitivity(
            lambda: ProbabilityThresholdClassifier(threshold=0.8, min_length=10, checkpoint_step=10),
            train,
            test.subset(range(20)),
            algorithm_name="threshold-0.8",
        )
        curve = compute_prefix_accuracy_curve(
            train, test, lengths=[30, 60, 90, 150], renormalize=True
        )
        report = assess_meaningfulness(
            domain="spoken keywords",
            prior_criterion=PriorProbabilityCriterion().evaluate(
                event_prior=0.001, per_window_false_positive_rate=0.02
            ),
            prefix_result=prefix_result,
            inclusion_result=inclusion_result,
            normalization_audit=audit,
            prefix_curve=curve,
            claimed_earliness=0.4,
        )
        assert not report.meaningful
        failed_names = {c.name for c in report.failed_criteria()}
        assert "confusability" in failed_names
        assert "prior_probability" in failed_names

    def test_chicken_domain_report_is_positive(self):
        # The paper's best-case domain: a cheap false positive, a reasonably
        # common behaviour, no lexical confounders, and a template detector
        # that does not rely on future normalisation.
        simulator = ChickenBehaviorSimulator(
            seed=5,
            behavior_weights={
                "resting": 0.4, "walking": 0.25, "pecking": 0.15, "preening": 0.1, DUSTBATHING: 0.1,
            },
        )
        stream = simulator.generate(80_000)
        template = dustbathing_template()
        from repro.distance.profile import distance_profile

        profile = distance_profile(template, stream.values)
        detections = profile <= 2.3
        dust_events = stream.events_with_label(DUSTBATHING)
        detected = sum(
            1 for e in dust_events if np.any(detections[max(e.start - 20, 0) : e.end])
        )
        dustbathing_fraction = sum(e.length for e in dust_events) / len(stream)
        prior_criterion = PriorProbabilityCriterion().evaluate(
            event_prior=dustbathing_fraction,
            per_window_false_positive_rate=0.001,
            per_window_true_positive_rate=detected / max(len(dust_events), 1),
        )
        prefix_result = analyze_lexical_prefixes(
            [DUSTBATHING], ["dustbathing", "walking", "pecking", "preening", "resting"]
        )
        report = assess_meaningfulness(
            domain="chicken dustbathing",
            prior_criterion=prior_criterion,
            prefix_result=prefix_result,
        )
        assert report.meaningful

    def test_homophone_analysis_feeds_report(self, gunpoint_small):
        _, test = gunpoint_small
        corpora = {"walk": smoothed_random_walk(2 ** 16, seed=9)}
        analysis = homophone_analysis(test, corpora, n_queries=2, seed=2)
        report = assess_meaningfulness(domain="gestures", homophone_result=analysis)
        assert report.criterion("confusability") is not None


class TestCrossClassifierConsistency:
    """All early classifiers satisfy the same behavioural contract."""

    @pytest.fixture(scope="class")
    def classifiers(self):
        return [
            ProbabilityThresholdClassifier(threshold=0.8, min_length=6, checkpoint_step=2),
            FixedTruncationClassifier(),
            ECTSClassifier(checkpoint_step=2),
            EDSCClassifier(threshold_method="che"),
            TEASERClassifier(n_checkpoints=8),
            ECDIREClassifier(n_checkpoints=8),
            CostAwareEarlyClassifier(n_checkpoints=8),
        ]

    def test_predictions_are_known_classes_and_earliness_bounded(
        self, classifiers, tiny_two_class
    ):
        series, labels = tiny_two_class
        for classifier in classifiers:
            classifier.fit(series[::2], labels[::2])
            result = evaluate_early_classifier(classifier, series[1::2], labels[1::2])
            assert 0.0 <= result.earliness <= 1.0
            assert result.accuracy >= 0.8, type(classifier).__name__
            predictions = classifier.predict(series[1::2])
            assert set(predictions) <= set(classifier.classes_)

    def test_prefix_predictions_never_exceed_training_length(self, classifiers, tiny_two_class):
        series, labels = tiny_two_class
        for classifier in classifiers:
            if not classifier.is_fitted:
                classifier.fit(series[::2], labels[::2])
            with pytest.raises(ValueError):
                classifier.predict_early(np.zeros(series.shape[1] + 5))
