"""Unit tests for the spoken-word synthesiser."""

import numpy as np
import pytest

from repro.data.words import (
    LEXICON,
    PHONEME_INVENTORY,
    WordSynthesizer,
    make_word_dataset,
    resample_to_length,
    synthesize_sentence,
)
from repro.distance.euclidean import znormalized_euclidean_distance
from repro.distance.neighbors import KNeighborsTimeSeriesClassifier


class TestLexicon:
    def test_all_lexicon_phonemes_exist(self):
        for word, phonemes in LEXICON.items():
            for phoneme in phonemes:
                assert phoneme in PHONEME_INVENTORY, f"{word} uses unknown phoneme {phoneme}"

    def test_prefix_families_share_leading_phonemes(self):
        # catalog, cattle and catechism all start with cat's phonemes.
        cat = LEXICON["cat"]
        for word in ("catalog", "cattle", "catechism"):
            assert LEXICON[word][: len(cat)] == cat
        dog = LEXICON["dog"]
        for word in ("dogmatic", "dogmatized", "doggery"):
            assert LEXICON[word][: len(dog)] == dog

    def test_homophone_pairs_have_identical_phonemes(self):
        assert LEXICON["flower"] == LEXICON["flour"]
        assert LEXICON["wither"] == LEXICON["whither"]

    def test_inclusion_family(self):
        weight = LEXICON["weight"]
        assert LEXICON["lightweight"][-len(weight):] == weight
        assert LEXICON["paperweight"][-len(weight):] == weight


class TestWordSynthesizer:
    def test_unknown_word_raises(self):
        with pytest.raises(KeyError):
            WordSynthesizer().synthesize_word("xylophone")

    def test_same_word_utterances_are_similar(self):
        synth = WordSynthesizer(seed=1)
        rng = np.random.default_rng(1)
        a = synth.synthesize_word("cat", rng=rng)
        b = synth.synthesize_word("cat", rng=rng)
        fixed_a = resample_to_length(a, 150)
        fixed_b = resample_to_length(b, 150)
        different = resample_to_length(synth.synthesize_word("dog", rng=rng), 150)
        same_distance = znormalized_euclidean_distance(fixed_a, fixed_b)
        cross_distance = znormalized_euclidean_distance(fixed_a, different)
        assert same_distance < cross_distance

    def test_word_is_prefix_of_longer_word(self):
        # The core prefix-problem property: the trace of "cat" and the first
        # part of the trace of "catalog" are generated from the same phonemes.
        synth = WordSynthesizer(seed=2, duration_jitter=0.0, noise_scale=0.0)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        cat = synth.synthesize_word("cat", rng=rng_a)
        catalog = synth.synthesize_word("catalog", rng=rng_b)
        overlap = min(cat.shape[0], catalog.shape[0])
        correlation = np.corrcoef(cat[:overlap], catalog[:overlap])[0, 1]
        assert correlation > 0.95

    def test_words_with_prefix(self):
        synth = WordSynthesizer()
        family = synth.words_with_prefix("cat")
        assert "catalog" in family and "catechism" in family and "cat" in family

    def test_words_containing(self):
        synth = WordSynthesizer()
        containing = synth.words_containing("point")
        assert "appointment" in containing and "disappointing" in containing

    def test_homophones_of(self):
        synth = WordSynthesizer()
        assert synth.homophones_of("flower") == ["flour"]
        assert synth.homophones_of("wither") == ["whither"]

    def test_normalize_token_strips_punctuation(self):
        assert WordSynthesizer.normalize_token("Cathy's") == "cathy"
        assert WordSynthesizer.normalize_token("doggery.") == "doggery"


class TestSentences:
    def test_sentence_events_cover_all_words(self):
        stream = synthesize_sentence("it was said that cathy's dogmatic catechism")
        assert [e.label for e in stream.events] == [
            "it", "was", "said", "that", "cathy", "dogmatic", "catechism",
        ]

    def test_sentence_events_are_ordered_and_disjoint(self):
        stream = synthesize_sentence("the cat and the dog")
        for first, second in zip(stream.events, stream.events[1:]):
            assert first.end <= second.start

    def test_sentence_values_match_event_extents(self):
        stream = synthesize_sentence("cat dog")
        assert stream.events[-1].end <= len(stream)

    def test_empty_sentence_rejected(self):
        with pytest.raises(ValueError):
            WordSynthesizer().synthesize_sentence([])


class TestMakeWordDataset:
    def test_shape_and_labels(self):
        dataset = make_word_dataset(n_per_class=5, length=150)
        assert dataset.series.shape == (10, 150)
        assert dataset.class_counts() == {"cat": 5, "dog": 5}

    def test_znormalized_by_default(self):
        dataset = make_word_dataset(n_per_class=3)
        assert dataset.verify_znormalized()

    def test_separable_in_ucr_format(self, word_dataset_small):
        dataset = word_dataset_small
        train = dataset.subset(range(0, dataset.n_exemplars, 2))
        test = dataset.subset(range(1, dataset.n_exemplars, 2))
        model = KNeighborsTimeSeriesClassifier().fit(train.series, train.labels)
        assert model.score(test.series, test.labels) >= 0.9

    def test_resample_mode(self):
        dataset = make_word_dataset(n_per_class=3, mode="resample")
        assert dataset.series.shape[1] == 150

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make_word_dataset(mode="stretch")

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            make_word_dataset(words=("cat",))


class TestResample:
    def test_length_and_endpoints(self):
        series = np.linspace(0, 1, 37)
        resampled = resample_to_length(series, 100)
        assert resampled.shape == (100,)
        assert resampled[0] == pytest.approx(series[0])
        assert resampled[-1] == pytest.approx(series[-1])

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            resample_to_length(np.array([1.0]), 10)
