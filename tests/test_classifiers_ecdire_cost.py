"""Unit tests for ECDIRE and the cost-aware early classifier."""

import numpy as np
import pytest

from repro.classifiers.cost_aware import CostAwareEarlyClassifier
from repro.classifiers.ecdire import ECDIREClassifier


class TestECDIREConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ECDIREClassifier(accuracy_threshold=0.0)
        with pytest.raises(ValueError):
            ECDIREClassifier(accuracy_threshold=1.5)
        with pytest.raises(ValueError):
            ECDIREClassifier(n_checkpoints=1)
        with pytest.raises(ValueError):
            ECDIREClassifier(margin_percentile=150)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ECDIREClassifier().predict_partial(np.zeros(10))


class TestECDIRETraining:
    def test_safe_timestamps_cover_all_classes(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECDIREClassifier(n_checkpoints=8).fit(series, labels)
        assert set(model.safe_timestamps_) == set(model.classes_)
        for timestamp in model.safe_timestamps_.values():
            assert timestamp in model.checkpoints()

    def test_margin_thresholds_per_checkpoint(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECDIREClassifier(n_checkpoints=8).fit(series, labels)
        assert set(model.margin_thresholds_) == set(model.checkpoints())
        for threshold in model.margin_thresholds_.values():
            assert threshold >= 0.0

    def test_lower_accuracy_threshold_never_delays_safe_timestamps(self, tiny_two_class):
        series, labels = tiny_two_class
        strict = ECDIREClassifier(accuracy_threshold=1.0, n_checkpoints=8).fit(series, labels)
        lenient = ECDIREClassifier(accuracy_threshold=0.7, n_checkpoints=8).fit(series, labels)
        for cls in strict.classes_:
            assert lenient.safe_timestamps_[cls] <= strict.safe_timestamps_[cls]


class TestECDIREPrediction:
    def test_separable_problem_accuracy_and_earliness(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECDIREClassifier(n_checkpoints=8).fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9
        assert model.average_earliness(series[1::2]) < 1.0

    def test_full_prefix_always_ready(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECDIREClassifier(n_checkpoints=8).fit(series, labels)
        assert model.predict_partial(series[0]).ready

    def test_gunpoint_accuracy_band(self, gunpoint_medium):
        train, test = gunpoint_medium
        model = ECDIREClassifier().fit(train.series, train.labels)
        assert model.score(test.series[:20], test.labels[:20]) >= 0.75


class TestCostAwareConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CostAwareEarlyClassifier(misclassification_cost=0.0)
        with pytest.raises(ValueError):
            CostAwareEarlyClassifier(delay_cost_per_unit=-1.0)
        with pytest.raises(ValueError):
            CostAwareEarlyClassifier(n_checkpoints=1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CostAwareEarlyClassifier().predict_partial(np.zeros(10))


class TestCostAwareBehaviour:
    def test_expected_error_decreases_with_length_overall(self, tiny_two_class):
        series, labels = tiny_two_class
        model = CostAwareEarlyClassifier(n_checkpoints=8).fit(series, labels)
        checkpoints = model.checkpoints()
        assert model.expected_error_[checkpoints[-1]] <= model.expected_error_[checkpoints[0]]

    def test_cost_accessors(self, tiny_two_class):
        series, labels = tiny_two_class
        model = CostAwareEarlyClassifier(n_checkpoints=8).fit(series, labels)
        checkpoint = model.checkpoints()[2]
        assert model.expected_cost_of_stopping_at(checkpoint) >= 0.0
        assert model.expected_cost_of_stopping_now(0.9, checkpoint) >= 0.0
        with pytest.raises(KeyError):
            model.expected_cost_of_stopping_at(999)
        with pytest.raises(ValueError):
            model.expected_cost_of_stopping_now(1.5, checkpoint)

    def test_separable_problem_accuracy(self, tiny_two_class):
        series, labels = tiny_two_class
        model = CostAwareEarlyClassifier(n_checkpoints=8).fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9

    def test_higher_delay_cost_triggers_no_later(self, gunpoint_medium):
        train, test = gunpoint_medium
        cheap_delay = CostAwareEarlyClassifier(delay_cost_per_unit=0.1, n_checkpoints=10)
        costly_delay = CostAwareEarlyClassifier(delay_cost_per_unit=3.0, n_checkpoints=10)
        cheap_delay.fit(train.series, train.labels)
        costly_delay.fit(train.series, train.labels)
        sample = test.series[:10]
        assert costly_delay.average_earliness(sample) <= cheap_delay.average_earliness(sample) + 1e-9

    def test_zero_delay_cost_waits_for_best_accuracy(self, tiny_two_class):
        # With no pressure to stop, the model should only stop once waiting
        # cannot improve the training-estimated error any further.
        series, labels = tiny_two_class
        model = CostAwareEarlyClassifier(delay_cost_per_unit=0.0, n_checkpoints=8)
        model.fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9
