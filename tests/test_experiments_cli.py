"""Tests for the experiments command-line interface and result rendering."""

import inspect
import json
import re

import pytest

from repro.experiments.__main__ import main
from repro.experiments import run_experiment
from repro.experiments.registry import EXPERIMENTS, FAST_OVERRIDES, SPECS


class TestCLI:
    def test_runs_named_experiments_fast(self, capsys):
        exit_code = main(["figure1", "figure6", "--fast", "--no-cache"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Figure 6" in output
        assert output.count("completed in") == 2

    def test_unknown_experiment_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure4"])
        assert excinfo.value.code != 0
        assert "figure4" in capsys.readouterr().err

    def test_fast_flag_reduces_workload(self):
        result = run_experiment("figure1", fast=True)
        assert result.class_counts["cat"] < 30  # the full-scale default

    def test_list_shows_every_experiment_with_tags(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name, spec in SPECS.items():
            assert name in output
            for tag in spec.tags:
                assert tag in output
        assert "completed in" not in output  # nothing was executed

    def test_tag_selects_matching_experiments(self, capsys):
        assert main(["--tag", "ecg", "--fast", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert output.count("completed in") == 1
        assert "[figure7 completed" in output

    def test_unknown_tag_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--tag", "nonsense"])
        assert "nonsense" in capsys.readouterr().err

    def test_seed_override_threads_through_to_artifact_and_cache(
        self, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        results_dir = tmp_path / "results"
        base = ["figure1", "--fast", "--cache-dir", str(cache_dir),
                "--json", "--results-dir", str(results_dir)]
        assert main([*base, "--seed", "99"]) == 0
        payload = json.loads((results_dir / "figure1.json").read_text())
        assert payload["seed"] == 99
        assert payload["parameters"]["seed"] == 99
        # A different seed is a different cache key: the default-seed run
        # must not hit the seeded run's prepared entry.
        assert main(base) == 0
        payload = json.loads((results_dir / "figure1.json").read_text())
        assert payload["seed"] == 3  # figure1's spec-level default
        assert payload["cache_hit"] is False
        assert len(list(cache_dir.glob("figure1-*.pkl"))) == 2
        capsys.readouterr()

    def test_json_writes_parseable_artifacts(self, tmp_path, capsys):
        results_dir = tmp_path / "results"
        exit_code = main(
            ["figure1", "--fast", "--no-cache", "--json", "--results-dir", str(results_dir)]
        )
        assert exit_code == 0
        payload = json.loads((results_dir / "figure1.json").read_text())
        assert payload["experiment"] == "figure1"
        assert payload["metrics"]
        assert "wrote 1 artifact(s)" in capsys.readouterr().out

    def test_default_cache_dir_is_created_in_cwd(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["figure1", "--fast"]) == 0
        assert (tmp_path / ".repro_cache").is_dir()
        assert list((tmp_path / ".repro_cache").glob("figure1-*.pkl"))
        capsys.readouterr()

    def test_jobs_output_matches_sequential_output(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        names = ["figure1", "figure7"]
        assert main([*names, "--fast"]) == 0
        sequential = capsys.readouterr().out
        assert main([*names, "--fast", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def normalise(text):
            return re.sub(r"completed in [0-9.]+ s", "completed in X s", text)

        assert normalise(sequential) == normalise(parallel)


class TestRegistry:
    """Pin the fast-path registry to the experiment registry.

    ``run_experiment(..., fast=True)`` silently falls back to the full-scale
    workload when an experiment has no ``FAST_OVERRIDES`` entry, so renaming
    an experiment (or one of its keyword arguments) must fail loudly here
    rather than quietly blowing up CI run times.
    """

    def test_every_experiment_has_a_fast_path(self):
        assert set(FAST_OVERRIDES) == set(EXPERIMENTS)

    def test_legacy_views_are_derived_from_the_spec_table(self):
        assert FAST_OVERRIDES == {
            name: dict(spec.fast_overrides) for name, spec in SPECS.items()
        }
        assert EXPERIMENTS == {
            name: spec.run_callable for name, spec in SPECS.items()
        }

    def test_fast_overrides_match_run_signatures(self):
        for name, overrides in FAST_OVERRIDES.items():
            parameters = inspect.signature(EXPERIMENTS[name]).parameters
            unknown = set(overrides) - set(parameters)
            assert not unknown, (
                f"FAST_OVERRIDES[{name!r}] names arguments {sorted(unknown)} "
                f"that {EXPERIMENTS[name].__module__}.run does not accept"
            )


class TestResultRendering:
    """Every experiment result renders a non-empty, self-describing text block."""

    @pytest.mark.parametrize(
        "name",
        ["figure1", "figure2", "figure6", "figure7", "figure9", "section5_padding"],
    )
    def test_to_text_is_self_describing(self, name):
        result = run_experiment(name, fast=True)
        text = result.to_text()
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 3
        # The text names the artefact it reproduces.
        assert name.replace("figure", "Figure ").replace("section5_padding", "Section 5") \
            .replace("table1", "Table 1").strip() in text
