"""Tests for the experiments command-line interface and result rendering."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments import run_experiment


class TestCLI:
    def test_runs_named_experiments_fast(self, capsys):
        exit_code = main(["figure1", "figure6", "--fast"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Figure 6" in output
        assert output.count("completed in") == 2

    def test_unknown_experiment_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure4"])
        assert excinfo.value.code != 0
        assert "figure4" in capsys.readouterr().err

    def test_fast_flag_reduces_workload(self):
        result = run_experiment("figure1", fast=True)
        assert result.class_counts["cat"] < 30  # the full-scale default


class TestResultRendering:
    """Every experiment result renders a non-empty, self-describing text block."""

    @pytest.mark.parametrize(
        "name",
        ["figure1", "figure2", "figure6", "figure7", "figure9", "section5_padding"],
    )
    def test_to_text_is_self_describing(self, name):
        result = run_experiment(name, fast=True)
        text = result.to_text()
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 3
        # The text names the artefact it reproduces.
        assert name.replace("figure", "Figure ").replace("section5_padding", "Section 5") \
            .replace("table1", "Table 1").strip() in text
