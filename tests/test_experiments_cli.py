"""Tests for the experiments command-line interface and result rendering."""

import inspect

import pytest

from repro.experiments.__main__ import main
from repro.experiments import run_experiment
from repro.experiments.registry import EXPERIMENTS, FAST_OVERRIDES


class TestCLI:
    def test_runs_named_experiments_fast(self, capsys):
        exit_code = main(["figure1", "figure6", "--fast"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Figure 6" in output
        assert output.count("completed in") == 2

    def test_unknown_experiment_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure4"])
        assert excinfo.value.code != 0
        assert "figure4" in capsys.readouterr().err

    def test_fast_flag_reduces_workload(self):
        result = run_experiment("figure1", fast=True)
        assert result.class_counts["cat"] < 30  # the full-scale default


class TestRegistry:
    """Pin the fast-path registry to the experiment registry.

    ``run_experiment(..., fast=True)`` silently falls back to the full-scale
    workload when an experiment has no ``FAST_OVERRIDES`` entry, so renaming
    an experiment (or one of its keyword arguments) must fail loudly here
    rather than quietly blowing up CI run times.
    """

    def test_every_experiment_has_a_fast_path(self):
        assert set(FAST_OVERRIDES) == set(EXPERIMENTS)

    def test_fast_overrides_match_run_signatures(self):
        for name, overrides in FAST_OVERRIDES.items():
            parameters = inspect.signature(EXPERIMENTS[name]).parameters
            unknown = set(overrides) - set(parameters)
            assert not unknown, (
                f"FAST_OVERRIDES[{name!r}] names arguments {sorted(unknown)} "
                f"that {EXPERIMENTS[name].__module__}.run does not accept"
            )


class TestResultRendering:
    """Every experiment result renders a non-empty, self-describing text block."""

    @pytest.mark.parametrize(
        "name",
        ["figure1", "figure2", "figure6", "figure7", "figure9", "section5_padding"],
    )
    def test_to_text_is_self_describing(self, name):
        result = run_experiment(name, fast=True)
        text = result.to_text()
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 3
        # The text names the artefact it reproduces.
        assert name.replace("figure", "Figure ").replace("section5_padding", "Section 5") \
            .replace("table1", "Table 1").strip() in text
