"""Equivalence and behaviour tests for the online streaming engine.

The load-bearing guarantee: :class:`repro.streaming.online.StreamingSession`
produces the *identical* alarm list to the offline reference loop
(:meth:`StreamingEarlyDetector.detect_reference`) -- exact ``position``,
``candidate_start``, ``label`` and ``prefix_length``, confidence to within
1e-10 -- across all three normalisation modes, strides, refractory settings
and ``max_alarms`` truncation, and for classifiers exercising every walk
flavour: the default slice-and-recompute path (probability threshold), the
engine-backed incremental context (ECTS) and the stateful streak trigger
rule (TEASER).
"""

import numpy as np
import pytest

from repro.classifiers.base import ClassifierStream
from repro.classifiers.ects import ECTSClassifier
from repro.classifiers.teaser import TEASERClassifier
from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.data.stream import StreamComposer
from repro.streaming.detector import StreamingEarlyDetector
from repro.streaming.metrics import evaluate_alarms, merge_evaluations
from repro.streaming.online import MultiStreamDetector, StreamingSession


def assert_alarms_equivalent(reference, candidate):
    """Field-by-field alarm equality; confidence to float round-off.

    Confidence may differ at ~1e-15 in causal mode (running Welford
    statistics versus the naive per-prefix recomputation); everything else
    must be exactly equal.
    """
    assert len(candidate) == len(reference)
    for expected, actual in zip(reference, candidate):
        assert actual.position == expected.position
        assert actual.candidate_start == expected.candidate_start
        assert actual.label == expected.label
        assert actual.prefix_length == expected.prefix_length
        assert abs(actual.confidence - expected.confidence) <= 1e-10


@pytest.fixture(scope="module")
def fitted_classifier(tiny_two_class):
    series, labels = tiny_two_class
    model = ProbabilityThresholdClassifier(threshold=0.85, min_length=6, checkpoint_step=2)
    return model.fit(series, labels)


@pytest.fixture(scope="module")
def ects_classifier(tiny_two_class):
    series, labels = tiny_two_class
    return ECTSClassifier().fit(series, labels)


@pytest.fixture(scope="module")
def teaser_classifier(tiny_two_class):
    series, labels = tiny_two_class
    return TEASERClassifier(n_checkpoints=8).fit(series, labels)


@pytest.fixture(scope="module")
def annotated_stream(tiny_two_class):
    series, labels = tiny_two_class
    composer = StreamComposer(
        background=np.zeros(2_000), gap_range=(60, 120), level_match=False, seed=3
    )
    exemplars = [series[0], series[10], series[1], series[11]]
    event_labels = [labels[0], labels[10], labels[1], labels[11]]
    return composer.compose(exemplars, event_labels)


@pytest.fixture(scope="module")
def noisy_stream(annotated_stream):
    """The annotated stream with background jitter: more alarm churn."""
    rng = np.random.default_rng(11)
    return annotated_stream.values + 0.02 * rng.standard_normal(len(annotated_stream))


class TestEquivalence:
    @pytest.mark.parametrize("normalization", ["none", "window", "causal"])
    @pytest.mark.parametrize("stride", [3, 8])
    def test_engine_matches_reference(
        self, fitted_classifier, annotated_stream, normalization, stride
    ):
        detector = StreamingEarlyDetector(
            fitted_classifier, stride=stride, normalization=normalization
        )
        assert_alarms_equivalent(
            detector.detect_reference(annotated_stream), detector.detect(annotated_stream)
        )

    @pytest.mark.parametrize("refractory", [0, 15, 60])
    def test_refractory_equivalence(self, fitted_classifier, noisy_stream, refractory):
        detector = StreamingEarlyDetector(
            fitted_classifier, stride=4, normalization="none", refractory=refractory
        )
        reference = detector.detect_reference(noisy_stream)
        assert_alarms_equivalent(reference, detector.detect(noisy_stream))
        positions = [a.position for a in reference]
        assert all(b - a >= refractory for a, b in zip(positions, positions[1:]))

    @pytest.mark.parametrize("max_alarms", [1, 2, 5])
    def test_max_alarms_truncation(self, fitted_classifier, noisy_stream, max_alarms):
        detector = StreamingEarlyDetector(
            fitted_classifier,
            stride=4,
            normalization="causal",
            refractory=0,
            max_alarms=max_alarms,
        )
        reference = detector.detect_reference(noisy_stream)
        assert len(reference) <= max_alarms
        assert_alarms_equivalent(reference, detector.detect(noisy_stream))

    @pytest.mark.parametrize("normalization", ["none", "causal"])
    def test_ects_engine_backed_candidates(
        self, ects_classifier, annotated_stream, normalization
    ):
        """Concurrent candidates each ride an independent prefix sweep."""
        detector = StreamingEarlyDetector(
            ects_classifier, stride=8, normalization=normalization
        )
        assert_alarms_equivalent(
            detector.detect_reference(annotated_stream), detector.detect(annotated_stream)
        )

    def test_teaser_streak_rule(self, teaser_classifier, annotated_stream):
        """The stateful consecutive-agreement rule survives the per-candidate walk."""
        detector = StreamingEarlyDetector(
            teaser_classifier, stride=8, normalization="window"
        )
        assert_alarms_equivalent(
            detector.detect_reference(annotated_stream), detector.detect(annotated_stream)
        )

    def test_tail_candidates_never_alarm(self, fitted_classifier, annotated_stream):
        """Starts whose window cannot complete are discarded, as offline."""
        # Cut the stream so it ends mid-event: the online engine sees the
        # event onset in still-open candidates but must not confirm them.
        event = annotated_stream.events[-1]
        values = annotated_stream.values[: event.start + 10]
        detector = StreamingEarlyDetector(fitted_classifier, stride=4, normalization="none")
        assert_alarms_equivalent(detector.detect_reference(values), detector.detect(values))

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_chunk_partition_invariance(self, fitted_classifier, annotated_stream, chunk_size):
        detector = StreamingEarlyDetector(fitted_classifier, stride=4, normalization="causal")
        session = detector.open_session()
        values = annotated_stream.values
        for start in range(0, values.shape[0], chunk_size):
            session.extend(values[start : start + chunk_size])
        assert_alarms_equivalent(detector.detect_reference(values), session.finalize())


class TestSessionBehaviour:
    def test_alarms_confirmed_no_later_than_window_completion(
        self, fitted_classifier, annotated_stream
    ):
        session = StreamingSession(fitted_classifier, stride=4, normalization="none")
        window = fitted_classifier.train_length_
        for index, value in enumerate(annotated_stream.values):
            for alarm in session.push(value):
                assert alarm.position <= index
                assert index == alarm.candidate_start + window - 1
        assert session.finalize() == session.alarms

    def test_incremental_emission_matches_batch(self, fitted_classifier, annotated_stream):
        batch = StreamingSession(fitted_classifier, stride=4, normalization="causal")
        emitted = list(batch.extend(annotated_stream.values))
        assert emitted == batch.finalize()

    def test_push_after_finalize_raises(self, fitted_classifier):
        session = StreamingSession(fitted_classifier, stride=4)
        session.finalize()
        with pytest.raises(RuntimeError):
            session.push(0.0)

    def test_rejects_non_finite_samples(self, fitted_classifier):
        session = StreamingSession(fitted_classifier, stride=4)
        with pytest.raises(ValueError):
            session.push(float("nan"))

    def test_parameter_validation(self, fitted_classifier):
        with pytest.raises(TypeError):
            StreamingSession(object())
        with pytest.raises(ValueError):
            StreamingSession(ProbabilityThresholdClassifier())  # unfitted
        with pytest.raises(ValueError):
            StreamingSession(fitted_classifier, stride=0)
        with pytest.raises(ValueError):
            StreamingSession(fitted_classifier, normalization="zscore")
        with pytest.raises(ValueError):
            StreamingSession(fitted_classifier, refractory=-1)
        with pytest.raises(ValueError):
            StreamingSession(fitted_classifier, max_alarms=0)

    def test_open_candidate_count_is_bounded(self, fitted_classifier, annotated_stream):
        stride = 4
        session = StreamingSession(fitted_classifier, stride=stride, normalization="none")
        bound = fitted_classifier.train_length_ // stride + 1
        for chunk in annotated_stream.iter_chunks(64):
            session.extend(chunk)
            assert session.n_open_candidates <= bound

    def test_short_stream_yields_no_alarms(self, fitted_classifier):
        session = StreamingSession(fitted_classifier, stride=2)
        session.extend(np.zeros(fitted_classifier.train_length_ - 1))
        assert session.finalize() == []


class TestClassifierStream:
    def test_matches_predict_early_on_exemplars(self, ects_classifier, tiny_two_class):
        series, _ = tiny_two_class
        for row in series[:6]:
            expected = ects_classifier.predict_early(row)
            walker = ects_classifier.open_stream()
            for value in row:
                walker.push(value)
                if walker.outcome is not None:
                    break
            outcome = walker.outcome
            assert outcome is not None
            assert outcome.triggered == expected.triggered
            assert outcome.label == expected.label
            assert outcome.trigger_length == expected.trigger_length
            assert abs(outcome.confidence - expected.confidence) <= 1e-10

    def test_concurrent_walkers_do_not_interfere(self, ects_classifier, tiny_two_class):
        series, _ = tiny_two_class
        solo = ects_classifier.predict_early(series[0])
        first = ects_classifier.open_stream()
        second = ects_classifier.open_stream()
        # Interleave two walks over different exemplars; the first must reach
        # the same outcome as an isolated predict_early.
        for a, b in zip(series[0], series[1]):
            if first.outcome is None:
                first.push(a)
            if second.outcome is None:
                second.push(b)
        assert first.outcome is not None
        assert first.outcome.label == solo.label
        assert first.outcome.trigger_length == solo.trigger_length

    def test_feed_rejects_non_finite_blocks(self, ects_classifier):
        # feed is the block-mode twin of push and must enforce the same
        # finiteness contract -- the engine-backed sweep path would otherwise
        # silently produce NaN distances.
        walker = ects_classifier.open_stream()
        with pytest.raises(ValueError):
            walker.feed(np.asarray([0.0, float("nan"), 1.0]))

    def test_push_past_outcome_raises(self, fitted_classifier):
        walker = ClassifierStream(fitted_classifier)
        for value in np.zeros(fitted_classifier.train_length_):
            walker.push(value)
        assert walker.outcome is not None and not walker.outcome.triggered
        with pytest.raises(RuntimeError):
            walker.push(0.0)


class TestMultiStream:
    def test_matches_per_stream_reference(self, fitted_classifier, annotated_stream):
        rng = np.random.default_rng(5)
        streams = [
            annotated_stream,
            annotated_stream.values[:400],
            annotated_stream.values + 0.01 * rng.standard_normal(len(annotated_stream)),
        ]
        fleet = MultiStreamDetector(
            fitted_classifier, stride=4, normalization="causal", chunk_size=97
        )
        detector = StreamingEarlyDetector(fitted_classifier, stride=4, normalization="causal")
        for alarms, stream in zip(fleet.detect(streams), streams):
            assert_alarms_equivalent(detector.detect_reference(stream), alarms)

    def test_merged_evaluation_pools_counts(self, fitted_classifier, annotated_stream):
        fleet = MultiStreamDetector(fitted_classifier, stride=4, normalization="none")
        merged = fleet.evaluate([annotated_stream, annotated_stream])
        detector = StreamingEarlyDetector(fitted_classifier, stride=4, normalization="none")
        single = evaluate_alarms(detector.detect(annotated_stream), annotated_stream)
        assert merged.n_alarms == 2 * single.n_alarms
        assert merged.true_positives == 2 * single.true_positives
        assert merged.false_positives == 2 * single.false_positives
        assert merged.stream_length == 2 * len(annotated_stream)
        assert merged.precision == pytest.approx(single.precision)
        assert merged.recall == pytest.approx(single.recall)

    def test_merge_requires_input(self):
        with pytest.raises(ValueError):
            merge_evaluations([])
