"""Equivalence suite for the vectorised training-engine fit kernels.

Every fit-side kernel introduced by the training engine keeps its original
Python-loop implementation as the semantic reference; this suite pins the
vectorised paths to those references:

* ECTS MPLs and supports **exactly** (integer MPLs, rational supports),
  across strict/relaxed variants, checkpoint steps, duplicate-exemplar
  tie-break cases and both kernel branches (dense cumulative-sum pass and
  the copy-free incremental sweep);
* EDSC candidate mining (extraction, threshold learning, scoring) and the
  resulting shapelet selection **exactly**, for both threshold estimators,
  under a fixed seed;
* the DTW wavefront dynamic program against the scalar double loop to
  <= 1e-10 (in fact bit-for-bit) across band specifications and unequal
  lengths, plus ``dtw_path`` validity on the wavefront costs.
"""

import numpy as np
import pytest

import repro.classifiers.ects as ects_module
from repro.classifiers.ects import ECTSClassifier, RelaxedECTSClassifier
from repro.classifiers.edsc import EDSCClassifier
from repro.distance.dtw import (
    _accumulated_cost,
    _accumulated_cost_reference,
    _resolve_band,
    dtw_distance,
    dtw_path,
)


def _labelled_problem(seed: int, n: int = 25, length: int = 40, duplicates: bool = True):
    """A random three-class problem, optionally with exact duplicate exemplars."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, length))
    labels = np.array(["a", "b", "c"])[rng.integers(0, 3, n)]
    if duplicates:
        # Exact duplicates exercise the lowest-index tie-break of every
        # nearest-neighbour selection at every prefix length.
        data[n // 2] = data[0]
        data[n // 2 + 1] = data[0]
        labels[n // 2] = labels[0]
    return data, labels


def _two_bump_problem(seed: int, n: int = 24, length: int = 48):
    """The separable bump problem EDSC solves from an early prefix."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=float)
    bump = np.exp(-0.5 * ((t - 12.0) / 3.0) ** 2)
    signs = [1.0 if i % 2 == 0 else -1.0 for i in range(n)]
    series = np.array(
        [sign * bump + 0.05 * rng.standard_normal(length) for sign in signs]
    )
    labels = np.array(["up" if sign > 0 else "down" for sign in signs])
    return series, labels


def _shapelet_key(shapelet):
    return (
        shapelet.label,
        shapelet.threshold,
        shapelet.utility,
        shapelet.precision,
        shapelet.source_index,
        shapelet.source_position,
        shapelet.values.tobytes(),
    )


class TestECTSFitKernels:
    @pytest.mark.parametrize("classifier", [ECTSClassifier, RelaxedECTSClassifier])
    @pytest.mark.parametrize("step", [1, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_mpls_and_supports_match_reference_exactly(self, classifier, step, seed):
        data, labels = _labelled_problem(seed)
        fitted = classifier(checkpoint_step=step).fit(data, labels)
        reference = classifier(checkpoint_step=step)._fit_reference(data, labels)
        assert np.array_equal(fitted.mpl_, reference.mpl_)
        assert np.array_equal(fitted.support_, reference.support_)
        assert np.array_equal(fitted._eligible, reference._eligible)

    @pytest.mark.parametrize("classifier", [ECTSClassifier, RelaxedECTSClassifier])
    def test_duplicate_exemplar_tie_breaks(self, classifier):
        # A dataset dominated by exact duplicates: nearest-neighbour ties at
        # every length, which both paths must resolve to the lowest index.
        rng = np.random.default_rng(3)
        base = rng.standard_normal((4, 30))
        data = np.vstack([base, base, base[:2]])
        labels = np.array(["x", "y", "x", "y"] * 2 + ["x", "y"])
        fitted = classifier().fit(data, labels)
        reference = classifier()._fit_reference(data, labels)
        assert np.array_equal(fitted.mpl_, reference.mpl_)
        assert np.array_equal(fitted.support_, reference.support_)

    @pytest.mark.parametrize("step", [1, 4])
    def test_sweep_branch_matches_dense_branch(self, monkeypatch, step):
        # The kernel picks dense vs incremental-sweep by a byte budget;
        # forcing the budget to zero exercises the sweep branch on a problem
        # the dense branch would normally take.
        data, labels = _labelled_problem(2)
        dense = ECTSClassifier(checkpoint_step=step).fit(data, labels)
        monkeypatch.setattr(ects_module, "_FIT_BLOCK_BYTES", 0)
        swept = ECTSClassifier(checkpoint_step=step).fit(data, labels)
        assert np.array_equal(dense.mpl_, swept.mpl_)
        assert np.array_equal(dense.support_, swept.support_)

    def test_support_kernel_matches_reference_on_gunpoint(self, gunpoint_small):
        train, _ = gunpoint_small
        fitted = ECTSClassifier(checkpoint_step=2).fit(train.series, train.labels)
        reference = ECTSClassifier(checkpoint_step=2)._fit_reference(
            train.series, train.labels
        )
        assert np.array_equal(fitted.support_, reference.support_)
        assert np.array_equal(fitted.mpl_, reference.mpl_)

    def test_checkpoints_share_the_mpl_length_grid(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ECTSClassifier(checkpoint_step=7).fit(series, labels)
        assert model.checkpoints() == model._mpl_lengths(series.shape[1])

    def test_predict_partial_reuses_fitted_engine(self, tiny_two_class, monkeypatch):
        series, labels = tiny_two_class
        model = ECTSClassifier(checkpoint_step=2).fit(series, labels)

        def _no_new_engines(*args, **kwargs):
            raise AssertionError("predict_partial must reuse the fitted engine")

        monkeypatch.setattr(ects_module, "PrefixDistanceEngine", _no_new_engines)
        partial = model.predict_partial(series[0][:10])
        assert partial.label in model.classes_


class TestEDSCFitKernels:
    @pytest.mark.parametrize("method", ["che", "kde"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fit_selects_identical_shapelets(self, method, seed):
        series, labels = _two_bump_problem(seed)
        fitted = EDSCClassifier(threshold_method=method).fit(series, labels)
        reference = EDSCClassifier(threshold_method=method)._fit_reference(
            series, labels
        )
        assert [_shapelet_key(s) for s in fitted.shapelets_] == [
            _shapelet_key(s) for s in reference.shapelets_
        ]

    @pytest.mark.parametrize("method", ["che", "kde"])
    def test_candidate_evaluation_matches_reference_per_length(self, method):
        series, labels = _two_bump_problem(4)
        model = EDSCClassifier(threshold_method=method)
        for window in (5, 9):
            batched = model._evaluate_candidates_of_length(
                series, labels, window, np.random.default_rng(13)
            )
            reference = model._evaluate_candidates_of_length_reference(
                series, labels, window, np.random.default_rng(13)
            )
            assert [_shapelet_key(s) for s in batched] == [
                _shapelet_key(s) for s in reference
            ]

    def test_subsampling_consumes_the_generator_identically(self):
        # With a cap below the candidate count both paths must draw the same
        # per-class subsample from the same generator state.
        series, labels = _two_bump_problem(5)
        model = EDSCClassifier(threshold_method="che", max_candidates_per_class=20)
        batched = model._evaluate_candidates_of_length(
            series, labels, 7, np.random.default_rng(21)
        )
        reference = model._evaluate_candidates_of_length_reference(
            series, labels, 7, np.random.default_rng(21)
        )
        assert [_shapelet_key(s) for s in batched] == [
            _shapelet_key(s) for s in reference
        ]

    def test_fit_on_gunpoint_matches_reference(self, gunpoint_small):
        train, _ = gunpoint_small
        fitted = EDSCClassifier(threshold_method="che").fit(
            train.series, train.labels
        )
        reference = EDSCClassifier(threshold_method="che")._fit_reference(
            train.series, train.labels
        )
        assert [_shapelet_key(s) for s in fitted.shapelets_] == [
            _shapelet_key(s) for s in reference.shapelets_
        ]


class TestDTWWavefront:
    @pytest.mark.parametrize("shape", [(30, 30), (25, 40), (40, 25), (1, 7), (7, 1)])
    @pytest.mark.parametrize("window", [None, 0, 3, 10, 0.0, 0.1, 0.5, 1.0])
    def test_cost_matrix_matches_reference(self, shape, window):
        rng = np.random.default_rng(shape[0] * 100 + shape[1])
        a = rng.standard_normal(shape[0])
        b = rng.standard_normal(shape[1])
        band = _resolve_band(shape[0], shape[1], window)
        reference = _accumulated_cost_reference(a, b, band)
        wavefront = _accumulated_cost(a, b, band)
        # Each wavefront cell performs the reference recurrence verbatim, so
        # the equivalence is exact, not merely <= 1e-10.
        assert np.array_equal(reference, wavefront)

    @pytest.mark.parametrize("window", [None, 5, 0.2])
    def test_distance_matches_reference_dp(self, window):
        rng = np.random.default_rng(8)
        a = rng.standard_normal(33)
        b = rng.standard_normal(27)
        band = _resolve_band(33, 27, window)
        cost = _accumulated_cost_reference(a, b, band)
        expected = float(np.sqrt(cost[33, 27]))
        assert dtw_distance(a, b, window=window) == pytest.approx(
            expected, abs=1e-10
        )

    @pytest.mark.parametrize("window", [None, 4, 0.3])
    def test_path_valid_on_wavefront_costs(self, window):
        rng = np.random.default_rng(9)
        a = rng.standard_normal(14)
        b = rng.standard_normal(19)
        path = dtw_path(a, b, window=window)
        assert path[0] == (0, 0)
        assert path[-1] == (13, 18)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert 0 <= i2 - i1 <= 1
            assert 0 <= j2 - j1 <= 1
            assert (i2 - i1) + (j2 - j1) >= 1
        if window is not None:
            band = _resolve_band(14, 19, window)
            assert all(abs(i - j) <= band for i, j in path)
