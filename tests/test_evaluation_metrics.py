"""Unit tests for repro.evaluation (accuracy, earliness, significance, runner)."""

import numpy as np
import pytest

from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.data.ucr_format import UCRDataset
from repro.evaluation.accuracy import accuracy, confusion_counts, error_rate, per_class_accuracy
from repro.evaluation.earliness import (
    evaluate_early_classifier,
    harmonic_mean_accuracy_earliness,
)
from repro.evaluation.runner import fit_and_score, prefix_accuracy_curve
from repro.evaluation.significance import mcnemar_test, two_proportion_z_test


class TestAccuracyMetrics:
    def test_accuracy_and_error(self):
        predictions = ["a", "a", "b", "b"]
        truth = ["a", "b", "b", "b"]
        assert accuracy(predictions, truth) == pytest.approx(0.75)
        assert error_rate(predictions, truth) == pytest.approx(0.25)

    def test_per_class_accuracy(self):
        predictions = ["a", "a", "b", "b"]
        truth = ["a", "b", "b", "b"]
        result = per_class_accuracy(predictions, truth)
        assert result["a"] == 1.0
        assert result["b"] == pytest.approx(2 / 3)

    def test_confusion_counts(self):
        counts = confusion_counts(["a", "b", "a"], ["a", "a", "b"])
        assert counts[("a", "a")] == 1
        assert counts[("a", "b")] == 1
        assert counts[("b", "a")] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy(["a"], ["a", "b"])
        with pytest.raises(ValueError):
            accuracy([], [])


class TestHarmonicMean:
    def test_perfect_scores(self):
        assert harmonic_mean_accuracy_earliness(1.0, 0.0) == pytest.approx(1.0)

    def test_zero_when_both_worthless(self):
        assert harmonic_mean_accuracy_earliness(0.0, 1.0) == 0.0

    def test_penalises_late_triggering(self):
        early = harmonic_mean_accuracy_earliness(0.9, 0.2)
        late = harmonic_mean_accuracy_earliness(0.9, 0.8)
        assert early > late

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            harmonic_mean_accuracy_earliness(1.2, 0.5)
        with pytest.raises(ValueError):
            harmonic_mean_accuracy_earliness(0.5, -0.1)


class TestEvaluateEarlyClassifier:
    def test_result_fields(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ProbabilityThresholdClassifier(threshold=0.8, min_length=4).fit(
            series[::2], labels[::2]
        )
        result = evaluate_early_classifier(model, series[1::2], labels[1::2])
        assert result.n_exemplars == 10
        assert 0.0 <= result.accuracy <= 1.0
        assert 0.0 < result.earliness <= 1.0
        assert 0.0 <= result.trigger_rate <= 1.0
        assert result.mean_trigger_length <= series.shape[1]
        assert 0.0 <= result.harmonic_mean <= 1.0

    def test_validation(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ProbabilityThresholdClassifier(min_length=4).fit(series, labels)
        with pytest.raises(ValueError):
            evaluate_early_classifier(model, series, labels[:-1])
        with pytest.raises(ValueError):
            evaluate_early_classifier(model, series[0], labels[:1])

    def test_batch_flag_gives_identical_metrics(self, tiny_two_class):
        series, labels = tiny_two_class
        model = ProbabilityThresholdClassifier(min_length=4).fit(series[::2], labels[::2])
        fast = evaluate_early_classifier(model, series[1::2], labels[1::2], batch=True)
        slow = evaluate_early_classifier(model, series[1::2], labels[1::2], batch=False)
        assert fast == slow


class TestEvaluateEarlyClassifierEdgeCases:
    """Empty, singleton and trigger-free test sets; batched == per-row on all."""

    def _fitted(self, tiny_two_class, threshold=0.8):
        series, labels = tiny_two_class
        return ProbabilityThresholdClassifier(threshold=threshold, min_length=4).fit(
            series, labels
        )

    @staticmethod
    def _both(model, series, labels):
        return (
            evaluate_early_classifier(model, series, labels, batch=True),
            evaluate_early_classifier(model, series, labels, batch=False),
        )

    def test_empty_test_set(self, tiny_two_class):
        series, _ = tiny_two_class
        model = self._fitted(tiny_two_class)
        empty = np.empty((0, series.shape[1]))
        fast, slow = self._both(model, empty, np.empty(0))
        assert fast == slow
        assert fast.n_exemplars == 0
        assert fast.accuracy == 0.0
        assert fast.earliness == 0.0
        assert fast.harmonic_mean == 0.0
        assert fast.trigger_rate == 0.0
        assert fast.mean_trigger_length == 0.0

    def test_single_exemplar(self, tiny_two_class):
        series, labels = tiny_two_class
        model = self._fitted(tiny_two_class)
        fast, slow = self._both(model, series[:1], labels[:1])
        assert fast == slow
        assert fast.n_exemplars == 1
        assert fast.accuracy in (0.0, 1.0)

    def test_classifier_that_never_triggers(self, tiny_two_class):
        series, labels = tiny_two_class
        # A softmax over two classes never reaches probability 1.0 exactly,
        # so threshold=1.0 yields trigger_rate 0 on every exemplar.
        model = self._fitted(tiny_two_class, threshold=1.0)
        fast, slow = self._both(model, series, labels)
        assert fast == slow
        assert fast.trigger_rate == 0.0
        assert fast.earliness == 1.0
        assert fast.mean_trigger_length == series.shape[1]


class TestSignificance:
    def test_identical_proportions_not_significant(self):
        result = two_proportion_z_test(90, 100, 90, 100)
        assert not result.significant
        assert result.p_value == pytest.approx(1.0)

    def test_large_difference_significant(self):
        result = two_proportion_z_test(95, 100, 55, 100)
        assert result.significant
        assert result.p_value < 0.001

    def test_degenerate_all_successes(self):
        result = two_proportion_z_test(100, 100, 100, 100)
        assert not result.significant

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_z_test(5, 0, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_z_test(11, 10, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_z_test(1, 10, 1, 10, alpha=2.0)

    def test_mcnemar_no_discordance(self):
        result = mcnemar_test(50, 0, 0, 10)
        assert not result.significant

    def test_mcnemar_strong_discordance(self):
        result = mcnemar_test(50, 40, 2, 10)
        assert result.significant

    def test_mcnemar_validation(self):
        with pytest.raises(ValueError):
            mcnemar_test(-1, 0, 0, 0)


class TestRunner:
    def _datasets(self, tiny_two_class):
        series, labels = tiny_two_class
        train = UCRDataset(name="train", series=series[::2], labels=labels[::2])
        test = UCRDataset(name="test", series=series[1::2], labels=labels[1::2])
        return train, test

    def test_fit_and_score(self, tiny_two_class):
        train, test = self._datasets(tiny_two_class)
        result = fit_and_score(ProbabilityThresholdClassifier(min_length=4), train, test)
        assert result.accuracy >= 0.9

    def test_fit_and_score_length_mismatch(self, tiny_two_class):
        train, test = self._datasets(tiny_two_class)
        short = UCRDataset(name="short", series=test.series[:, :10], labels=test.labels)
        with pytest.raises(ValueError):
            fit_and_score(ProbabilityThresholdClassifier(min_length=4), train, short)

    def test_prefix_accuracy_curve_monotone_lengths(self, tiny_two_class):
        train, test = self._datasets(tiny_two_class)
        curve = prefix_accuracy_curve(train, test, [10, 20, 40])
        assert set(curve) == {10, 20, 40}
        assert all(0.0 <= v <= 1.0 for v in curve.values())

    def test_prefix_accuracy_curve_validates_lengths(self, tiny_two_class):
        train, test = self._datasets(tiny_two_class)
        with pytest.raises(ValueError):
            prefix_accuracy_curve(train, test, [0])
        with pytest.raises(ValueError):
            prefix_accuracy_curve(train, test, [999])
