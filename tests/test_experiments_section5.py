"""Tests for the Section 5 padding experiment and the extended classifier set."""

import pytest

from repro.classifiers import CostAwareEarlyClassifier, ECDIREClassifier, TEASERClassifier
from repro.experiments import run_experiment, section5_padding, table1


class TestSection5Padding:
    @pytest.fixture(scope="class")
    def result(self):
        return section5_padding.run(n_per_class=15)

    def test_both_dataset_families_compared(self, result):
        names = {c.dataset_name for c in result.comparisons}
        assert names == {"CBF-like", "Trace-like"}

    def test_accuracy_not_sacrificed(self, result):
        for comparison in result.comparisons:
            assert comparison.padded.accuracy >= 0.8
            assert comparison.unpadded.accuracy >= 0.8

    def test_padding_inflates_apparent_savings(self, result):
        for comparison in result.comparisons:
            # The padded variant always looks at least as "early" as the
            # unpadded one, and a substantial share of its apparent savings is
            # attributable to the padding itself.
            assert comparison.apparent_savings_padded >= comparison.apparent_savings_unpadded - 0.05
            assert comparison.padding_share_of_savings >= 0.2

    def test_registered_in_registry(self):
        result = run_experiment("section5_padding", fast=True)
        assert result.comparisons
        assert "padding" in result.to_text()


class TestExtendedAlgorithmFamily:
    def test_table1_accepts_additional_algorithms(self, gunpoint_medium):
        # The Table 1 machinery is reusable for any early classifier; run it
        # with the extended family (TEASER, ECDIRE, cost-aware) at small scale.
        result = table1.run(
            n_train_per_class=12,
            n_test_per_class=15,
            algorithms={
                "TEASER": lambda: TEASERClassifier(n_checkpoints=10),
                "ECDIRE": lambda: ECDIREClassifier(n_checkpoints=10),
                "Cost-aware": lambda: CostAwareEarlyClassifier(n_checkpoints=10),
            },
        )
        assert len(result.audits) == 3
        for audit in result.audits:
            assert 0.0 <= audit.denormalized.accuracy <= audit.normalized.accuracy + 0.2
