"""Unit tests for EDSC (Chebyshev and KDE threshold learning)."""

import numpy as np
import pytest

from repro.classifiers.edsc import EDSCClassifier, _best_match_distances, _sliding_windows


class TestHelpers:
    def test_sliding_windows_shape_and_content(self):
        series = np.arange(20.0).reshape(2, 10)
        windows = _sliding_windows(series, 4)
        assert windows.shape == (2, 7, 4)
        np.testing.assert_allclose(windows[0, 0], series[0, :4])
        np.testing.assert_allclose(windows[1, 3], series[1, 3:7])

    def test_best_match_distances_match_brute_force(self):
        rng = np.random.default_rng(0)
        candidates = rng.standard_normal((3, 5))
        series = rng.standard_normal((4, 20))
        distances, ends = _best_match_distances(candidates, series)
        assert distances.shape == (3, 4)
        for i in range(3):
            for j in range(4):
                brute = min(
                    np.linalg.norm(candidates[i] - series[j, s : s + 5])
                    for s in range(16)
                )
                assert distances[i, j] == pytest.approx(brute, abs=1e-9)
                assert 5 <= ends[i, j] <= 20


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EDSCClassifier(threshold_method="chebby")
        with pytest.raises(ValueError):
            EDSCClassifier(chebyshev_k=0)
        with pytest.raises(ValueError):
            EDSCClassifier(target_precision=0.3)
        with pytest.raises(ValueError):
            EDSCClassifier(shapelet_length_fractions=())
        with pytest.raises(ValueError):
            EDSCClassifier(shapelet_length_fractions=(0.0,))
        with pytest.raises(ValueError):
            EDSCClassifier(position_step=0)
        with pytest.raises(ValueError):
            EDSCClassifier(max_candidates_per_class=0)


class TestTraining:
    def test_selects_shapelets(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="che").fit(series, labels)
        assert model.shapelets_
        for shapelet in model.shapelets_:
            assert shapelet.threshold > 0
            assert shapelet.label in model.classes_
            assert 0.0 <= shapelet.precision <= 1.0

    def test_kde_variant_trains(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="kde").fit(series, labels)
        assert model.shapelets_

    def test_shapelet_values_come_from_training_series(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="che").fit(series, labels)
        shapelet = model.shapelets_[0]
        source = series[shapelet.source_index]
        np.testing.assert_allclose(
            shapelet.values,
            source[shapelet.source_position : shapelet.source_position + shapelet.length],
        )


class TestPrediction:
    def test_separable_problem_accuracy_and_earliness(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="che").fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9
        assert model.average_earliness(series[1::2]) < 1.0

    def test_partial_on_short_prefix_not_ready(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="che").fit(series, labels)
        shortest = min(s.length for s in model.shapelets_)
        partial = model.predict_partial(series[0][: max(shortest - 1, 1)])
        assert not partial.ready

    def test_gunpoint_normalized_vs_denormalized(self, gunpoint_medium):
        from repro.data.denormalize import denormalize_dataset

        train, test = gunpoint_medium
        model = EDSCClassifier(threshold_method="che")
        model.fit(train.series, train.labels)
        clean = model.score(test.series, test.labels)
        shifted = denormalize_dataset(test, seed=2)
        perturbed = model.score(shifted.series, shifted.labels)
        assert clean >= 0.75
        # The Table 1 phenomenon: matching raw values against thresholds
        # learned on normalised data collapses under a trivial offset.
        assert perturbed <= clean - 0.1
