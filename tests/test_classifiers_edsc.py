"""Unit tests for EDSC (Chebyshev and KDE threshold learning)."""

import numpy as np
import pytest

from repro.classifiers.edsc import EDSCClassifier, _best_match_distances, _sliding_windows


class TestHelpers:
    def test_sliding_windows_shape_and_content(self):
        series = np.arange(20.0).reshape(2, 10)
        windows = _sliding_windows(series, 4)
        assert windows.shape == (2, 7, 4)
        np.testing.assert_allclose(windows[0, 0], series[0, :4])
        np.testing.assert_allclose(windows[1, 3], series[1, 3:7])

    def test_best_match_distances_match_brute_force(self):
        rng = np.random.default_rng(0)
        candidates = rng.standard_normal((3, 5))
        series = rng.standard_normal((4, 20))
        distances, ends = _best_match_distances(candidates, series)
        assert distances.shape == (3, 4)
        for i in range(3):
            for j in range(4):
                brute = min(
                    np.linalg.norm(candidates[i] - series[j, s : s + 5])
                    for s in range(16)
                )
                assert distances[i, j] == pytest.approx(brute, abs=1e-9)
                assert 5 <= ends[i, j] <= 20


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EDSCClassifier(threshold_method="chebby")
        with pytest.raises(ValueError):
            EDSCClassifier(chebyshev_k=0)
        with pytest.raises(ValueError):
            EDSCClassifier(target_precision=0.3)
        with pytest.raises(ValueError):
            EDSCClassifier(shapelet_length_fractions=())
        with pytest.raises(ValueError):
            EDSCClassifier(shapelet_length_fractions=(0.0,))
        with pytest.raises(ValueError):
            EDSCClassifier(position_step=0)
        with pytest.raises(ValueError):
            EDSCClassifier(max_candidates_per_class=0)


class TestTraining:
    def test_selects_shapelets(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="che").fit(series, labels)
        assert model.shapelets_
        for shapelet in model.shapelets_:
            assert shapelet.threshold > 0
            assert shapelet.label in model.classes_
            assert 0.0 <= shapelet.precision <= 1.0

    def test_kde_variant_trains(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="kde").fit(series, labels)
        assert model.shapelets_

    def test_shapelet_values_come_from_training_series(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="che").fit(series, labels)
        shapelet = model.shapelets_[0]
        source = series[shapelet.source_index]
        np.testing.assert_allclose(
            shapelet.values,
            source[shapelet.source_position : shapelet.source_position + shapelet.length],
        )


class TestPrediction:
    def test_separable_problem_accuracy_and_earliness(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="che").fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9
        assert model.average_earliness(series[1::2]) < 1.0

    def test_partial_on_short_prefix_not_ready(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(threshold_method="che").fit(series, labels)
        shortest = min(s.length for s in model.shapelets_)
        partial = model.predict_partial(series[0][: max(shortest - 1, 1)])
        assert not partial.ready

    def test_gunpoint_normalized_vs_denormalized(self, gunpoint_medium):
        from repro.data.denormalize import denormalize_dataset

        train, test = gunpoint_medium
        model = EDSCClassifier(threshold_method="che")
        model.fit(train.series, train.labels)
        clean = model.score(test.series, test.labels)
        shifted = denormalize_dataset(test, seed=2)
        perturbed = model.score(shifted.series, shifted.labels)
        assert clean >= 0.75
        # The Table 1 phenomenon: matching raw values against thresholds
        # learned on normalised data collapses under a trivial offset.
        assert perturbed <= clean - 0.1


class TestExtremaPruning:
    """The opt-in argrelmax/argrelmin candidate filter of the mining stage."""

    def test_prune_order_validation(self):
        with pytest.raises(ValueError):
            EDSCClassifier(prune_order=0)

    def test_pruned_fit_still_selects_shapelets(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(prune_candidates=True).fit(series, labels)
        assert model.shapelets_
        assert model.score(series, labels) >= 0.9

    def test_keep_mask_requires_extremum_inside_window(self, tiny_two_class):
        series, labels = tiny_two_class
        model = EDSCClassifier(prune_candidates=True, prune_order=2)
        # A pure ramp has no interior extrema: every window is pruned.
        ramp = np.linspace(0.0, 1.0, 40)[None, :]
        mask = model._extrema_keep_mask(
            ramp, np.zeros(3, dtype=int), np.asarray([0, 10, 20]), 8
        )
        assert not mask.any()
        # A sharp triangle peak (strict maximum at index 19): windows
        # covering the peak survive, flat shoulders do not.
        peak = np.concatenate([np.linspace(0, 1, 20), np.linspace(1, 0, 20)[1:]])[None, :]
        mask = model._extrema_keep_mask(
            peak, np.zeros(2, dtype=int), np.asarray([15, 0]), 8
        )
        assert mask[0] and not mask[1]

    def test_pruning_reduces_candidate_pool(self, tiny_two_class):
        series, labels = tiny_two_class
        rng_a = np.random.default_rng(13)
        rng_b = np.random.default_rng(13)
        window = max(3, int(round(0.2 * series.shape[1])))
        unpruned = EDSCClassifier(max_candidates_per_class=10**9)._extract_candidates(
            series, np.asarray(labels), window, rng_a
        )[0]
        pruned = EDSCClassifier(
            max_candidates_per_class=10**9, prune_candidates=True
        )._extract_candidates(series, np.asarray(labels), window, rng_b)[0]
        assert 0 < pruned.shape[0] < unpruned.shape[0]

    def test_batched_and_reference_fits_agree_with_pruning(self, tiny_two_class):
        series, labels = tiny_two_class
        batched = EDSCClassifier(prune_candidates=True, random_state=13).fit(
            series, labels
        )
        reference = EDSCClassifier(prune_candidates=True, random_state=13)._fit_reference(
            series, labels
        )
        assert len(batched.shapelets_) == len(reference.shapelets_)
        for fast, slow in zip(batched.shapelets_, reference.shapelets_):
            np.testing.assert_array_equal(fast.values, slow.values)
            assert fast.threshold == slow.threshold
            assert fast.utility == slow.utility
            assert fast.source_index == slow.source_index
            assert fast.source_position == slow.source_position

    def test_default_flag_off_changes_nothing(self, tiny_two_class):
        series, labels = tiny_two_class
        default = EDSCClassifier(random_state=13).fit(series, labels)
        explicit = EDSCClassifier(random_state=13, prune_candidates=False).fit(
            series, labels
        )
        assert len(default.shapelets_) == len(explicit.shapelets_)
        for a, b in zip(default.shapelets_, explicit.shapelets_):
            np.testing.assert_array_equal(a.values, b.values)
            assert a.threshold == b.threshold
