"""Unit tests for the chicken-accelerometer behaviour simulator."""

import numpy as np
import pytest

from repro.data.chicken import (
    BEHAVIORS,
    DUSTBATHING,
    ChickenBehaviorSimulator,
    dustbathing_template,
)
from repro.distance.profile import distance_profile


class TestTemplate:
    def test_default_length(self):
        assert dustbathing_template().shape == (120,)

    def test_custom_length(self):
        assert dustbathing_template(length=90).shape == (90,)

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            dustbathing_template(length=10)

    def test_rides_on_one_g_baseline(self):
        template = dustbathing_template()
        assert 0.5 < template.mean() < 1.5

    def test_onset_has_energy(self):
        # The discriminative onset: the first 30% is not flat.
        template = dustbathing_template()
        onset = template[: int(0.3 * 120)]
        assert np.std(onset) > 0.3


class TestSimulator:
    def test_stream_length(self):
        stream = ChickenBehaviorSimulator(seed=1).generate(20_000)
        assert len(stream) == 20_000

    def test_all_events_have_known_behaviours(self):
        stream = ChickenBehaviorSimulator(seed=2).generate(20_000)
        for event in stream.events:
            assert event.label in BEHAVIORS

    def test_rejects_tiny_stream(self):
        with pytest.raises(ValueError):
            ChickenBehaviorSimulator().generate(100)

    def test_rejects_unknown_behaviour_weight(self):
        with pytest.raises(ValueError):
            ChickenBehaviorSimulator(behavior_weights={"flying": 1.0})

    def test_weights_are_renormalised(self):
        simulator = ChickenBehaviorSimulator(
            behavior_weights={b: 2.0 for b in BEHAVIORS}
        )
        assert sum(simulator.behavior_weights.values()) == pytest.approx(1.0)

    def test_dustbathing_is_rare_by_default(self):
        simulator = ChickenBehaviorSimulator(seed=3)
        stream = simulator.generate(150_000)
        dust = stream.events_with_label(DUSTBATHING)
        total = len(stream.events)
        assert 0 < len(dust) < 0.2 * total

    def test_deterministic_given_seed(self):
        a = ChickenBehaviorSimulator(seed=11).generate(10_000)
        b = ChickenBehaviorSimulator(seed=11).generate(10_000)
        np.testing.assert_allclose(a.values, b.values)

    def test_dustbathing_events_accessor(self):
        simulator = ChickenBehaviorSimulator(seed=4)
        stream = simulator.generate(100_000)
        assert simulator.dustbathing_events(stream) == stream.events_with_label(DUSTBATHING)


class TestTemplateMatchesBouts:
    def test_dustbathing_bouts_match_template_closely(self):
        # The Fig. 8 property: every dustbathing bout is within the paper's
        # threshold (2.3) of the canonical template, and the truncated
        # template's threshold (1.7) also recovers them.
        weights = {"resting": 0.4, "walking": 0.25, "pecking": 0.15, "preening": 0.1, DUSTBATHING: 0.1}
        simulator = ChickenBehaviorSimulator(seed=5, behavior_weights=weights)
        stream = simulator.generate(120_000)
        dust = stream.events_with_label(DUSTBATHING)
        assert len(dust) >= 3

        template = dustbathing_template()
        profile = distance_profile(template, stream.values)
        for event in dust[:10]:
            window = profile[max(event.start - 20, 0) : event.start + 20]
            assert window.min() <= 2.3

    def test_other_behaviours_do_not_match_template(self):
        weights = {"resting": 0.5, "walking": 0.3, "pecking": 0.15, "preening": 0.05, DUSTBATHING: 0.0}
        simulator = ChickenBehaviorSimulator(seed=6, behavior_weights=weights)
        stream = simulator.generate(60_000)
        assert not stream.events_with_label(DUSTBATHING)
        template = dustbathing_template()
        profile = distance_profile(template, stream.values)
        assert profile.min() > 2.3
