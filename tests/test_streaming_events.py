"""Unit tests for alarm-to-event matching."""

import numpy as np
import pytest

from repro.data.stream import ComposedStream, GroundTruthEvent
from repro.streaming.detector import Alarm
from repro.streaming.events import match_alarms_to_events


def _stream() -> ComposedStream:
    return ComposedStream(
        values=np.zeros(1_000),
        events=[
            GroundTruthEvent(start=100, end=150, label="gun"),
            GroundTruthEvent(start=400, end=450, label="gun"),
            GroundTruthEvent(start=700, end=750, label="point"),
        ],
    )


def _alarm(position: int, label: str = "gun") -> Alarm:
    return Alarm(position=position, candidate_start=max(position - 30, 0), label=label,
                 confidence=0.9, prefix_length=30)


class TestMatching:
    def test_alarm_inside_event_is_true_positive(self):
        matches, missed = match_alarms_to_events([_alarm(120)], _stream())
        assert matches[0].is_true_positive
        assert matches[0].event.start == 100
        assert len(missed) == 2

    def test_alarm_outside_any_event_is_false_positive(self):
        matches, missed = match_alarms_to_events([_alarm(300)], _stream())
        assert not matches[0].is_true_positive
        assert matches[0].event is None
        assert len(missed) == 3

    def test_label_mismatch_is_false_positive(self):
        matches, _ = match_alarms_to_events([_alarm(720, label="gun")], _stream())
        assert not matches[0].is_true_positive

    def test_label_mismatch_allowed_when_not_required(self):
        matches, _ = match_alarms_to_events(
            [_alarm(720, label="gun")], _stream(), require_label_match=False
        )
        assert matches[0].is_true_positive

    def test_duplicate_alarm_on_same_event_ignored(self):
        matches, missed = match_alarms_to_events([_alarm(110), _alarm(130)], _stream())
        assert len(matches) == 1
        assert matches[0].is_true_positive
        assert len(missed) == 2

    def test_duplicate_allowed_when_requested(self):
        matches, _ = match_alarms_to_events(
            [_alarm(110), _alarm(130)], _stream(), allow_multiple_alarms_per_event=True
        )
        assert len(matches) == 2
        assert all(m.is_true_positive for m in matches)

    def test_onset_tolerance(self):
        early_alarm = _alarm(95)
        strict, _ = match_alarms_to_events([early_alarm], _stream(), onset_tolerance=0)
        lenient, _ = match_alarms_to_events([early_alarm], _stream(), onset_tolerance=10)
        assert not strict[0].is_true_positive
        assert lenient[0].is_true_positive

    def test_target_labels_filter(self):
        # Only 'gun' events are detectable; the 'point' event cannot be missed.
        matches, missed = match_alarms_to_events(
            [_alarm(120)], _stream(), target_labels=("gun",)
        )
        assert matches[0].is_true_positive
        assert len(missed) == 1  # the other gun event

    def test_fraction_of_event_seen(self):
        matches, _ = match_alarms_to_events([_alarm(125)], _stream())
        assert matches[0].fraction_of_event_seen == pytest.approx((125 - 100 + 1) / 50)

    def test_no_alarms_all_events_missed(self):
        matches, missed = match_alarms_to_events([], _stream())
        assert matches == []
        assert len(missed) == 3
