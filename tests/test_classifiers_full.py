"""Unit tests for the plain-classification baselines."""

import numpy as np
import pytest

from repro.classifiers.full import FixedTruncationClassifier, FullLengthClassifier


class TestFullLengthClassifier:
    def test_never_triggers_before_full_length(self, tiny_two_class):
        series, labels = tiny_two_class
        model = FullLengthClassifier().fit(series, labels)
        outcome = model.predict_early(series[0])
        assert outcome.trigger_length == series.shape[1]
        assert outcome.earliness == 1.0

    def test_checkpoints_is_only_full_length(self, tiny_two_class):
        series, labels = tiny_two_class
        model = FullLengthClassifier().fit(series, labels)
        assert model.checkpoints() == [series.shape[1]]

    def test_accuracy_on_separable_problem(self, tiny_two_class):
        series, labels = tiny_two_class
        model = FullLengthClassifier().fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) == 1.0

    def test_partial_prediction_not_ready_early(self, tiny_two_class):
        series, labels = tiny_two_class
        model = FullLengthClassifier().fit(series, labels)
        partial = model.predict_partial(series[0][:10])
        assert not partial.ready


class TestFixedTruncationClassifier:
    def test_explicit_trigger_length(self, tiny_two_class):
        series, labels = tiny_two_class
        model = FixedTruncationClassifier(trigger_length=12).fit(series, labels)
        outcome = model.predict_early(series[0])
        assert outcome.triggered
        assert outcome.trigger_length == 12

    def test_explicit_trigger_length_validated(self, tiny_two_class):
        series, labels = tiny_two_class
        with pytest.raises(ValueError):
            FixedTruncationClassifier(trigger_length=0)
        with pytest.raises(ValueError):
            FixedTruncationClassifier(trigger_length=999).fit(series, labels)

    def test_auto_selected_length_is_shorter_than_full(self, gunpoint_medium_raw):
        # On GunPoint-like data, the informative part ends well before the
        # exemplar does, so the auto-selected truncation should be < length.
        train, _ = gunpoint_medium_raw
        model = FixedTruncationClassifier(tolerance=0.02).fit(
            train.z_normalized().series, train.labels
        )
        assert model.trigger_length_ is not None
        assert model.trigger_length_ < train.series_length

    def test_accuracy_maintained_on_separable_problem(self, tiny_two_class):
        series, labels = tiny_two_class
        model = FixedTruncationClassifier().fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9

    def test_earliness_below_one(self, tiny_two_class):
        series, labels = tiny_two_class
        model = FixedTruncationClassifier().fit(series[::2], labels[::2])
        assert model.average_earliness(series[1::2]) < 1.0
