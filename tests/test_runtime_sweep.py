"""Tests for crash-resumable runs: manifest, work queue, sweeps, resume."""

from __future__ import annotations

import json
import os
import signal

import numpy as np
import pytest

from repro.data.shards import synthesize_sharded_archive
from repro.runtime.manifest import RunManifest, file_sha256
from repro.runtime.scheduler import QueueTask, run_experiments, run_queue
from repro.runtime.sweep import run_sweep, sweep_one_dataset

#: Cheap registry experiment reused from the scheduler tests.
CHEAP = "figure1"
CHEAP_OVERRIDES = {"n_per_class": 4}


# --------------------------------------------------------------------------
# Module-level task functions: the pool pickles them by qualified name.
def _double(x):
    return x * 2


def _boom(message="boom"):
    raise RuntimeError(message)


def _flaky(counter_path, succeed_on):
    """Fail until the ``succeed_on``-th invocation (state kept on disk)."""
    calls = int(os.path.exists(counter_path) and open(counter_path).read() or 0) + 1
    with open(counter_path, "w") as handle:
        handle.write(str(calls))
    if calls < succeed_on:
        raise RuntimeError(f"transient failure #{calls}")
    return calls


def _suicide_once(flag_path, value):
    """SIGKILL the worker process on the first call; succeed afterwards."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return value


# --------------------------------------------------------------------------
class TestRunManifest:
    def test_create_load_roundtrip(self, tmp_path):
        manifest = RunManifest.open_or_create(tmp_path, ["a", "b"], metadata={"k": 1})
        assert manifest.counts() == {"pending": 2, "running": 0, "done": 0, "failed": 0}
        reloaded = RunManifest.load(tmp_path)
        assert reloaded.task_ids == ["a", "b"]
        assert reloaded.metadata == {"k": 1}

    def test_fresh_create_refuses_an_existing_manifest(self, tmp_path):
        RunManifest.open_or_create(tmp_path, ["a"])
        with pytest.raises(FileExistsError):
            RunManifest.open_or_create(tmp_path, ["a"])

    def test_duplicate_task_ids_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unique"):
            RunManifest.open_or_create(tmp_path, ["a", "a"])

    def test_state_transitions_persist_atomically(self, tmp_path):
        manifest = RunManifest.open_or_create(tmp_path, ["a"])
        manifest.mark_running("a")
        assert RunManifest.load(tmp_path).state("a") == "running"
        artifact = tmp_path / "a.json"
        artifact.write_text("{}\n")
        manifest.mark_done("a", artifact=artifact)
        entry = RunManifest.load(tmp_path).entry("a")
        assert entry["state"] == "done"
        assert entry["attempts"] == 1
        assert entry["artifact"] == "a.json"  # stored run_dir-relative
        assert entry["artifact_sha256"] == file_sha256(artifact)

    def test_structured_error_records(self, tmp_path):
        manifest = RunManifest.open_or_create(tmp_path, ["a"])
        manifest.mark_running("a")
        try:
            raise ValueError("bad input")
        except ValueError as error:
            manifest.record_error("a", error)
        manifest.mark_failed("a")
        entry = RunManifest.load(tmp_path).entry("a")
        assert entry["state"] == "failed"
        (record,) = entry["errors"]
        assert record["type"] == "ValueError"
        assert record["message"] == "bad input"
        assert "Traceback" in record["traceback"]
        assert record["attempt"] == 1

    def test_resume_requeues_running_and_failed_keeps_done(self, tmp_path):
        manifest = RunManifest.open_or_create(tmp_path, ["a", "b", "c"])
        manifest.mark_running("a")  # killed mid-flight
        manifest.mark_running("b")
        manifest.mark_done("b")
        manifest.mark_running("c")
        manifest.record_error("c", RuntimeError("x"))
        manifest.mark_failed("c")
        resumed = RunManifest.open_or_create(
            tmp_path, ["a", "b", "c", "d"], resume=True
        )
        assert resumed.state("a") == "pending"
        assert resumed.state("b") == "done"
        assert resumed.state("c") == "pending"  # error history preserved
        assert resumed.entry("c")["errors"]
        assert resumed.state("d") == "pending"  # appended

    def test_unknown_task_raises(self, tmp_path):
        manifest = RunManifest.open_or_create(tmp_path, ["a"])
        with pytest.raises(KeyError, match="nope"):
            manifest.mark_done("nope")


class TestRunQueue:
    def test_sequential_success(self, tmp_path):
        manifest = RunManifest.open_or_create(tmp_path, ["x", "y"])
        results, failed = run_queue(
            [QueueTask("x", _double, (2,)), QueueTask("y", _double, (5,))],
            manifest=manifest,
        )
        assert results == {"x": 4, "y": 10}
        assert failed == {}
        assert manifest.counts()["done"] == 2

    def test_done_tasks_are_skipped(self, tmp_path):
        manifest = RunManifest.open_or_create(tmp_path, ["x", "y"])
        manifest.mark_running("x")
        manifest.mark_done("x")
        results, _ = run_queue(
            [QueueTask("x", _boom), QueueTask("y", _double, (3,))],
            manifest=manifest,
        )
        assert results == {"y": 6}  # x never re-ran (it would have raised)
        assert manifest.attempts("x") == 1

    def test_poisoned_task_exhausts_retries_without_raising(self, tmp_path):
        manifest = RunManifest.open_or_create(tmp_path, ["bad", "good"])
        results, failed = run_queue(
            [QueueTask("bad", _boom), QueueTask("good", _double, (1,))],
            manifest=manifest,
            retries=2,
            retry_backoff=0.01,
        )
        assert results == {"good": 2}
        assert isinstance(failed["bad"], RuntimeError)
        entry = manifest.entry("bad")
        assert entry["state"] == "failed"
        assert entry["attempts"] == 3  # 1 + 2 retries
        assert [e["attempt"] for e in entry["errors"]] == [1, 2, 3]

    def test_transient_failure_recovers_within_budget(self, tmp_path):
        counter = str(tmp_path / "calls")
        manifest = RunManifest.open_or_create(tmp_path, ["flaky"])
        results, failed = run_queue(
            [QueueTask("flaky", _flaky, (counter, 3))],
            manifest=manifest,
            retries=2,
            retry_backoff=0.01,
        )
        assert failed == {}
        assert results == {"flaky": 3}
        assert manifest.attempts("flaky") == 3
        assert manifest.state("flaky") == "done"

    def test_retries_also_work_without_a_manifest(self, tmp_path):
        counter = str(tmp_path / "calls")
        results, failed = run_queue(
            [QueueTask("flaky", _flaky, (counter, 2))],
            retries=1,
            retry_backoff=0.01,
        )
        assert results == {"flaky": 2}
        assert failed == {}

    def test_sigkilled_worker_is_requeued_and_pool_rebuilt(self, tmp_path):
        flag = str(tmp_path / "flag")
        manifest = RunManifest.open_or_create(tmp_path, ["victim", "a", "b"])
        results, failed = run_queue(
            [
                QueueTask("victim", _suicide_once, (flag, 42)),
                QueueTask("a", _double, (1,)),
                QueueTask("b", _double, (2,)),
            ],
            jobs=2,
            manifest=manifest,
            retries=2,
            retry_backoff=0.01,
        )
        assert failed == {}
        assert results == {"victim": 42, "a": 2, "b": 4}
        # The death was recorded as a structured BrokenProcessPool error.
        errors = [e["type"] for e in manifest.entry("victim")["errors"]]
        assert "BrokenProcessPool" in errors
        assert manifest.counts()["done"] == 3

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_queue([QueueTask("a", _double, (1,)), QueueTask("a", _double, (2,))])


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("archive")
    return synthesize_sharded_archive(
        root, 5, n_exemplars_per_class=6, length=48, seed=9
    )


class TestRunSweep:
    def test_sweep_completes_and_writes_artifacts(self, archive, tmp_path):
        summary = run_sweep(archive, tmp_path / "run", retries=0)
        assert summary["n_tasks"] == 5
        assert summary["done"] == 5
        assert summary["failed"] == 0
        assert 0.0 <= summary["mean_accuracy"] <= 1.0
        for directory in archive:
            payload = json.loads(
                (tmp_path / "run" / "artifacts" / f"{directory.name}.json").read_text()
            )
            assert payload["n_eval"] > 0

    def test_resume_is_idempotent_and_touches_nothing(self, archive, tmp_path):
        run_dir = tmp_path / "run"
        run_sweep(archive, run_dir, retries=0)
        before = {
            path.name: (file_sha256(path), path.stat().st_mtime_ns)
            for path in (run_dir / "artifacts").iterdir()
        }
        summary = run_sweep(archive, run_dir, resume=True, retries=0)
        assert summary["executed"] == 0
        assert summary["skipped"] == 5
        after = {
            path.name: (file_sha256(path), path.stat().st_mtime_ns)
            for path in (run_dir / "artifacts").iterdir()
        }
        assert after == before  # done artifacts byte- and mtime-untouched

    def test_resume_runs_only_unfinished_work(self, archive, tmp_path):
        run_dir = tmp_path / "run"
        # Simulate a killed run: 3 of 5 done, one caught mid-flight.
        manifest = RunManifest.open_or_create(run_dir, [d.name for d in archive])
        for directory in archive[:3]:
            manifest.mark_running(directory.name)
            payload = sweep_one_dataset(directory)
            path = run_dir / "artifacts" / f"{directory.name}.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload) + "\n")
            manifest.mark_done(directory.name, artifact=path)
        manifest.mark_running(archive[3].name)

        summary = run_sweep(archive, run_dir, resume=True, retries=0)
        assert summary["executed"] == 2  # the mid-flight one + the never-started one
        assert summary["done"] == 5
        resumed = RunManifest.load(run_dir)
        assert [resumed.attempts(d.name) for d in archive] == [1, 1, 1, 2, 1]

    def test_dense_loader_matches_dataset_count(self, archive, tmp_path):
        summary = run_sweep(archive, tmp_path / "dense", retries=0, loader="dense")
        assert summary["done"] == 5
        assert summary["loader"] == "dense"

    def test_dense_loader_requires_in_process(self, archive, tmp_path):
        with pytest.raises(ValueError, match="in-process"):
            run_sweep(archive, tmp_path / "x", jobs=2, loader="dense")

    def test_sweep_task_is_deterministic(self, archive):
        one = sweep_one_dataset(archive[0])
        two = sweep_one_dataset(archive[0])
        assert one["accuracy"] == two["accuracy"]
        assert one["n_train"] + one["n_eval"] == one["n_exemplars"]


class TestRunExperimentsQueued:
    def test_manifest_mode_runs_and_resumes(self, tmp_path):
        run_dir = tmp_path / "run"
        results = run_experiments(
            [CHEAP],
            fast=True,
            overrides=CHEAP_OVERRIDES,
            run_dir=run_dir,
            retries=1,
        )
        assert [r.name for r in results] == [CHEAP]
        manifest = RunManifest.load(run_dir)
        assert manifest.state(CHEAP) == "done"
        assert (run_dir / "results" / f"{CHEAP}.json").is_file()

        resumed = run_experiments(
            [CHEAP],
            fast=True,
            overrides=CHEAP_OVERRIDES,
            run_dir=run_dir,
            resume=True,
            retries=1,
        )
        # Reconstructed from the artifact, not re-executed.
        assert resumed[0].summary == results[0].summary
        assert resumed[0].metrics == dict(results[0].metrics)
        assert RunManifest.load(run_dir).attempts(CHEAP) == 1

    def test_lost_artifact_forces_re_execution_on_resume(self, tmp_path):
        run_dir = tmp_path / "run"
        run_experiments(
            [CHEAP], fast=True, overrides=CHEAP_OVERRIDES, run_dir=run_dir
        )
        (run_dir / "results" / f"{CHEAP}.json").unlink()
        results = run_experiments(
            [CHEAP],
            fast=True,
            overrides=CHEAP_OVERRIDES,
            run_dir=run_dir,
            resume=True,
        )
        assert [r.name for r in results] == [CHEAP]
        assert RunManifest.load(run_dir).attempts(CHEAP) == 2

    def test_failures_are_recorded_not_raised(self, tmp_path):
        run_dir = tmp_path / "run"
        results = run_experiments(
            ["no-such-experiment"], fast=True, run_dir=run_dir, retries=1
        )
        assert results == []
        entry = RunManifest.load(run_dir).entry("no-such-experiment")
        assert entry["state"] == "failed"
        assert entry["attempts"] == 2
        assert entry["errors"][0]["type"] == "KeyError"

    def test_retries_without_run_dir_are_rejected(self):
        with pytest.raises(ValueError, match="run_dir"):
            run_experiments([CHEAP], retries=1)
