"""Unit tests for the Fig. 6 denormalisation transform."""

import numpy as np
import pytest

from repro.data.denormalize import denormalize_dataset, denormalize_series
from repro.data.ucr_format import UCRDataset


class TestDenormalizeSeries:
    def test_offsets_within_range(self):
        rng = np.random.default_rng(0)
        series = np.zeros((50, 20))
        shifted = denormalize_series(series, rng, offset_range=(-1.0, 1.0))
        offsets = shifted[:, 0]
        assert np.all(offsets >= -1.0) and np.all(offsets <= 1.0)

    def test_offset_constant_within_exemplar(self):
        rng = np.random.default_rng(1)
        series = np.random.default_rng(2).standard_normal((5, 30))
        shifted = denormalize_series(series, rng)
        differences = shifted - series
        for row in differences:
            assert np.allclose(row, row[0])

    def test_single_series_supported(self):
        rng = np.random.default_rng(3)
        series = np.arange(10.0)
        shifted = denormalize_series(series, rng)
        assert shifted.shape == (10,)
        assert not np.allclose(shifted, series)

    def test_scale_range_applied(self):
        rng = np.random.default_rng(4)
        series = np.ones((20, 10))
        scaled = denormalize_series(series, rng, offset_range=(0.0, 0.0), scale_range=(2.0, 2.0))
        np.testing.assert_allclose(scaled, 2.0 * series)

    def test_bad_ranges_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            denormalize_series(np.zeros((2, 3)), rng, offset_range=(1.0, -1.0))
        with pytest.raises(ValueError):
            denormalize_series(np.zeros((2, 3)), rng, scale_range=(0.0, 1.0))


class TestDenormalizeDataset:
    def _dataset(self) -> UCRDataset:
        rng = np.random.default_rng(6)
        return UCRDataset(
            name="toy",
            series=rng.standard_normal((6, 12)),
            labels=np.asarray(["a", "b"] * 3),
            znormalized=True,
        )

    def test_flag_cleared_and_metadata_recorded(self):
        dataset = self._dataset()
        shifted = denormalize_dataset(dataset, seed=1)
        assert not shifted.znormalized
        assert shifted.metadata["denormalized"] is True
        assert shifted.metadata["offset_range"] == (-1.0, 1.0)

    def test_labels_untouched(self):
        dataset = self._dataset()
        shifted = denormalize_dataset(dataset)
        assert np.array_equal(shifted.labels, dataset.labels)

    def test_deterministic_given_seed(self):
        dataset = self._dataset()
        a = denormalize_dataset(dataset, seed=3)
        b = denormalize_dataset(dataset, seed=3)
        np.testing.assert_allclose(a.series, b.series)

    def test_different_seed_differs(self):
        dataset = self._dataset()
        a = denormalize_dataset(dataset, seed=3)
        b = denormalize_dataset(dataset, seed=4)
        assert not np.allclose(a.series, b.series)

    def test_shapes_preserved(self):
        dataset = self._dataset()
        shifted = denormalize_dataset(dataset)
        assert shifted.series.shape == dataset.series.shape
