"""Tests for the runtime: spec resolution, executor, cache wiring, artifacts."""

from __future__ import annotations

import pytest

from repro.experiments.registry import SPECS, get_spec
from repro.runtime.artifacts import artifact_payload, load_artifact, write_artifact
from repro.runtime.cache import PrepareCache
from repro.runtime.scheduler import execute_spec, run_experiments

#: A cheap experiment used throughout (fast figure1 runs in ~10 ms).
CHEAP = "figure1"
CHEAP_OVERRIDES = {"n_per_class": 4}


class TestSpecTable:
    def test_every_spec_names_its_module_stages(self):
        for spec in SPECS.values():
            for stage in ("prepare", "compute", "render", "metrics", "run"):
                assert callable(spec.stage(stage)), (spec.name, stage)

    def test_every_spec_exposes_a_default_seed(self):
        for spec in SPECS.values():
            assert isinstance(spec.default_seed, int), spec.name

    def test_fast_overrides_resolve_against_run_signature(self):
        for spec in SPECS.values():
            params = spec.resolve_params(fast=True)
            assert set(spec.fast_overrides) <= set(params), spec.name

    def test_prepare_stage_params_include_the_seed(self):
        # The cache key is built from the prepare-stage parameters; the
        # spec-level seed must be part of it for every experiment.
        for spec in SPECS.values():
            params = spec.resolve_params(fast=True)
            assert spec.seed_param in spec.stage_params("prepare", params), spec.name

    def test_unknown_override_raises_a_named_typeerror(self):
        spec = get_spec(CHEAP)
        with pytest.raises(TypeError) as excinfo:
            spec.resolve_params(overrides={"bogus_knob": 1})
        message = str(excinfo.value)
        assert CHEAP in message and "bogus_knob" in message

    def test_declared_artifact_name(self):
        assert get_spec("figure9").artifact == "figure9.json"


class TestExecuteSpec:
    def test_structured_result_fields(self):
        result = execute_spec(CHEAP, fast=True, overrides=CHEAP_OVERRIDES)
        assert result.name == CHEAP
        assert result.parameters["n_per_class"] == 4  # override beat fast value
        assert result.seed == get_spec(CHEAP).default_seed
        assert result.metrics and result.summary.startswith("Figure 1")
        assert set(result.timings) == {"prepare", "compute", "render", "total"}
        assert result.timings["total"] >= result.timings["prepare"]
        assert result.raw is not None and result.raw.to_text() == result.summary

    def test_result_matches_legacy_run_experiment(self):
        from repro.experiments import run_experiment

        legacy = run_experiment(CHEAP, fast=True, **CHEAP_OVERRIDES)
        result = execute_spec(CHEAP, fast=True, overrides=CHEAP_OVERRIDES)
        assert result.summary == legacy.to_text()

    def test_keep_raw_false_strips_the_domain_result(self):
        result = execute_spec(CHEAP, fast=True, overrides=CHEAP_OVERRIDES, keep_raw=False)
        assert result.raw is None
        assert result.summary  # the rendered text survives

    def test_cache_miss_then_hit_same_bytes(self, tmp_path):
        cache = PrepareCache(tmp_path)
        cold = execute_spec(CHEAP, fast=True, overrides=CHEAP_OVERRIDES, cache=cache)
        warm = execute_spec(CHEAP, fast=True, overrides=CHEAP_OVERRIDES, cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.summary == warm.summary
        assert dict(cold.metrics) == dict(warm.metrics)
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_different_params_do_not_share_cache_entries(self, tmp_path):
        cache = PrepareCache(tmp_path)
        execute_spec(CHEAP, fast=True, overrides={"n_per_class": 4}, cache=cache)
        other = execute_spec(CHEAP, fast=True, overrides={"n_per_class": 5}, cache=cache)
        assert not other.cache_hit
        assert len(cache.entries()) == 2

    def test_compute_only_params_reuse_the_prepared_payload(self, tmp_path):
        # figure9's min_length/step shape only the compute stage; changing
        # them must hit the cached prepared split, not resynthesise it.
        cache = PrepareCache(tmp_path)
        execute_spec("figure9", fast=True, cache=cache)
        warm = execute_spec("figure9", fast=True, overrides={"step": 10}, cache=cache)
        assert warm.cache_hit
        assert len(cache.entries()) == 1

    def test_object_valued_compute_param_still_caches_prepare(self, tmp_path):
        # table1's ``algorithms`` factories shape only the compute stage, so
        # they never reach the cache key: the prepared GunPoint split is
        # cached (and reused) even though the factories are uncacheable.
        from repro.classifiers.ects import ECTSClassifier

        cache = PrepareCache(tmp_path)
        overrides = {
            "n_train_per_class": 6,
            "n_test_per_class": 6,
            "algorithms": {"ECTS only": lambda: ECTSClassifier(min_support=0.0)},
        }
        cold = execute_spec("table1", fast=True, overrides=overrides, cache=cache)
        warm = execute_spec("table1", fast=True, overrides=overrides, cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert len(cache.entries()) == 1

    def test_uncacheable_prepare_param_falls_back_to_uncached_run(self, tmp_path, monkeypatch):
        # A prepare-stage parameter with no canonical form (here an opaque
        # object) must bypass the cache rather than fail the run.
        import sys
        import types

        module = types.ModuleType("_fake_runtime_experiment")

        class Opaque:
            pass

        def prepare(knob=None, seed=0):
            return {"knob": knob, "seed": seed}

        def compute(prepared):
            return prepared

        module.prepare = prepare
        module.compute = compute
        module.render = lambda result: "fake summary"
        module.metrics = lambda result: {"seed": result["seed"]}
        module.run = lambda knob=None, seed=0: compute(prepare(knob=knob, seed=seed))
        monkeypatch.setitem(sys.modules, module.__name__, module)

        from repro.runtime.spec import ExperimentSpec

        spec = ExperimentSpec(name="fake", module=module.__name__)
        cache = PrepareCache(tmp_path)
        result = execute_spec(spec, overrides={"knob": Opaque()}, cache=cache)
        assert not result.cache_hit
        assert result.summary == "fake summary"
        assert cache.entries() == []
        assert cache.stats.skips == 1


class TestRunExperiments:
    def test_sequential_preserves_order_and_invokes_callback(self, tmp_path):
        seen = []
        results = run_experiments(
            ["figure7", CHEAP],
            fast=True,
            jobs=1,
            cache=PrepareCache(tmp_path),
            on_result=lambda result: seen.append(result.name),
        )
        assert [result.name for result in results] == ["figure7", CHEAP]
        assert seen == ["figure7", CHEAP]

    def test_parallel_matches_sequential_for_a_small_batch(self, tmp_path):
        names = [CHEAP, "figure7"]
        sequential = run_experiments(names, fast=True, jobs=1)
        parallel = run_experiments(
            names, fast=True, jobs=2, cache=PrepareCache(tmp_path / "cache")
        )
        assert [r.summary for r in parallel] == [r.summary for r in sequential]

    def test_results_dir_receives_one_artifact_per_experiment(self, tmp_path):
        run_experiments(
            [CHEAP], fast=True, jobs=1, results_dir=tmp_path / "results"
        )
        payload = load_artifact(tmp_path / "results" / f"{CHEAP}.json")
        assert payload["experiment"] == CHEAP
        assert payload["metrics"]


class TestArtifacts:
    def test_payload_roundtrips_through_disk(self, tmp_path):
        result = execute_spec(CHEAP, fast=True, overrides=CHEAP_OVERRIDES)
        path = write_artifact(result, tmp_path)
        assert path.name == f"{CHEAP}.json"
        assert load_artifact(path) == artifact_payload(result)

    def test_payload_sanitises_non_json_parameters(self, tmp_path):
        # appendix_b's gap_range is a tuple; the artifact must still be JSON.
        result = execute_spec(
            "figure6", fast=True, overrides={"offset_range": (-0.5, 0.5)}
        )
        payload = artifact_payload(result)
        assert payload["parameters"]["offset_range"] == [-0.5, 0.5]
        write_artifact(result, tmp_path)  # must not raise

    def test_non_finite_metrics_become_null_in_strict_json(self, tmp_path):
        # Python's json would emit bare NaN/Infinity tokens, which strict
        # parsers reject; the writer must map them to null.
        import dataclasses
        import json
        import math

        result = execute_spec(CHEAP, fast=True, overrides=CHEAP_OVERRIDES)
        result = dataclasses.replace(
            result,
            metrics={"bad": float("nan"), "worse": float("inf"), "fine": 1.0},
        )
        path = write_artifact(result, tmp_path)
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        payload = json.loads(text)
        assert payload["metrics"] == {"bad": None, "worse": None, "fine": 1.0}
        assert math.isfinite(payload["timings"]["total"])
