"""Unit tests for the per-prefix-length probabilistic classifier."""

import numpy as np
import pytest

from repro.classifiers.prefix_probability import PrefixProbabilisticClassifier


class TestFit:
    def test_calibrated_checkpoints_cover_range(self, tiny_two_class):
        series, labels = tiny_two_class
        model = PrefixProbabilisticClassifier().fit(series, labels)
        checkpoints = model.calibrated_checkpoints
        assert checkpoints[0] >= 3
        assert checkpoints[-1] == series.shape[1]

    def test_explicit_checkpoints_validated(self, tiny_two_class):
        series, labels = tiny_two_class
        with pytest.raises(ValueError):
            PrefixProbabilisticClassifier(checkpoints=[0, 10]).fit(series, labels)
        with pytest.raises(ValueError):
            PrefixProbabilisticClassifier(checkpoints=[10, 99]).fit(series, labels)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            PrefixProbabilisticClassifier().fit(np.zeros(10), ["a"])

    def test_unfitted_query_raises(self):
        with pytest.raises(RuntimeError):
            PrefixProbabilisticClassifier().predict_proba_prefix(np.zeros(5))


class TestPrediction:
    def test_probabilities_sum_to_one(self, tiny_two_class):
        series, labels = tiny_two_class
        model = PrefixProbabilisticClassifier().fit(series, labels)
        result = model.predict_proba_prefix(series[0][:20])
        assert sum(result.probabilities.values()) == pytest.approx(1.0)
        assert 0.0 <= result.margin <= 1.0

    def test_full_prefix_classifies_correctly(self, tiny_two_class):
        series, labels = tiny_two_class
        model = PrefixProbabilisticClassifier().fit(series[::2], labels[::2])
        for row, label in zip(series[1::2], labels[1::2]):
            assert model.predict_proba_prefix(row).label == label

    def test_confidence_grows_with_evidence(self, tiny_two_class):
        # On a separable problem, seeing more of the exemplar should (weakly)
        # increase the winner's probability.
        series, labels = tiny_two_class
        model = PrefixProbabilisticClassifier().fit(series[::2], labels[::2])
        row = series[1]
        early = model.predict_proba_prefix(row[:5]).confidence
        late = model.predict_proba_prefix(row).confidence
        assert late >= early - 0.05

    def test_exclude_removes_self_match(self, tiny_two_class):
        series, labels = tiny_two_class
        model = PrefixProbabilisticClassifier().fit(series, labels)
        with_self = model.predict_proba_prefix(series[0])
        without_self = model.predict_proba_prefix(series[0], exclude=0)
        assert without_self.confidence <= with_self.confidence + 1e-9

    def test_exclude_out_of_range(self, tiny_two_class):
        series, labels = tiny_two_class
        model = PrefixProbabilisticClassifier().fit(series, labels)
        with pytest.raises(IndexError):
            model.predict_proba_prefix(series[0], exclude=99)

    def test_prefix_too_short_rejected(self, tiny_two_class):
        series, labels = tiny_two_class
        model = PrefixProbabilisticClassifier(min_length=5).fit(series, labels)
        with pytest.raises(ValueError):
            model.predict_proba_prefix(series[0][:3])

    def test_prefix_too_long_rejected(self, tiny_two_class):
        series, labels = tiny_two_class
        model = PrefixProbabilisticClassifier().fit(series, labels)
        with pytest.raises(ValueError):
            model.predict_proba_prefix(np.zeros(series.shape[1] + 1))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PrefixProbabilisticClassifier(min_length=0)
        with pytest.raises(ValueError):
            PrefixProbabilisticClassifier(n_neighbors=0)
