"""Multichannel (n, L, d) correctness: naive references and d=1 bit-equality.

Two guards hold the multichannel data model together:

* every vectorised ``d > 1`` kernel is pinned to a naive per-channel Python
  loop (channel-summed squared differences, per-channel z-norm statistics,
  dependent DTW with channel-summed cell costs) to ``<= 1e-10`` -- under the
  reference *and* pruned DTW backends;
* every classifier and normalisation mode produces bit-identical results on
  a ``(n, L, 1)`` tensor and the legacy 2-D ``(n, L)`` layout, so golden
  summaries cannot drift from the univariate seed.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.classifiers.ects import ECTSClassifier
from repro.classifiers.edsc import EDSCClassifier
from repro.classifiers.teaser import TEASERClassifier
from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.data.shards import SHARD_SCHEMA_VERSION, ShardedDataset, write_shards
from repro.data.ucr_like import make_multichannel_cbf_dataset
from repro.distance.dtw import dtw_distance
from repro.distance.engine import (
    batch_prefix_distances,
    dtw_nearest_neighbors,
    ragged_prefix_distances,
)
from repro.distance.znorm import causal_znormalize, znormalize
from repro.streaming.online import RunningCausalStats, causal_znormalize_batch

RNG = np.random.default_rng(20260808)

ATOL = 1e-10


def _naive_prefix_distance(query: np.ndarray, train_row: np.ndarray, length: int) -> float:
    """Channel-summed prefix Euclidean distance via explicit Python loops."""
    total = 0.0
    for t in range(length):
        for c in range(query.shape[1]):
            diff = query[t, c] - train_row[t, c]
            total += diff * diff
    return float(np.sqrt(total))


def _naive_dtw(a: np.ndarray, b: np.ndarray, band: int | None) -> float:
    """Dependent DTW via the textbook O(n*m) recurrence, channel-summed."""
    n, m = a.shape[0], b.shape[0]
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        lo, hi = 1, m
        if band is not None:
            lo, hi = max(1, i - band), min(m, i + band)
        for j in range(lo, hi + 1):
            cell = 0.0
            for c in range(a.shape[1]):
                diff = a[i - 1, c] - b[j - 1, c]
                cell += diff * diff
            cost[i, j] = cell + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
    return float(np.sqrt(cost[n, m]))


def _naive_causal_znorm(window: np.ndarray) -> np.ndarray:
    """Per-channel causal z-norm: each step uses only samples seen so far."""
    out = np.zeros_like(window)
    for c in range(window.shape[1]):
        for t in range(window.shape[0]):
            seen = window[: t + 1, c]
            std = seen.std()
            if std >= 1e-12:
                out[t, c] = (window[t, c] - seen.mean()) / std
    return out


class TestPrefixEuclideanNaive:
    def test_batch_prefix_distances_match_per_channel_loop(self):
        queries = RNG.normal(size=(4, 12, 3))
        train = RNG.normal(size=(5, 15, 3))
        lengths = [1, 4, 12]
        result = batch_prefix_distances(queries, train, lengths)
        assert result.shape == (len(lengths), queries.shape[0], train.shape[0])
        for qi in range(queries.shape[0]):
            for ti in range(train.shape[0]):
                for li, length in enumerate(lengths):
                    expected = _naive_prefix_distance(queries[qi], train[ti], length)
                    assert abs(result[li, qi, ti] - expected) <= ATOL

    def test_ragged_prefix_distances_match_per_channel_loop(self):
        queries = RNG.normal(size=(6, 10, 2))
        train = RNG.normal(size=(4, 10, 2))
        lengths = np.asarray([1, 3, 10, 7, 2, 5])
        result = ragged_prefix_distances(queries, train, lengths)
        for qi, length in enumerate(lengths):
            for ti in range(train.shape[0]):
                expected = _naive_prefix_distance(queries[qi], train[ti], int(length))
                assert abs(result[qi, ti] - expected) <= ATOL


class TestDependentDTWNaive:
    @pytest.mark.parametrize("window,band", [(None, None), (3, 3), (0.25, None)])
    def test_dtw_distance_matches_naive_equal_lengths(self, window, band):
        a = RNG.normal(size=(12, 3))
        b = RNG.normal(size=(12, 3))
        if band is None and window is not None:
            band = max(int(np.ceil(window * 12)), abs(12 - 12))
        assert abs(dtw_distance(a, b, window=window) - _naive_dtw(a, b, band)) <= ATOL

    def test_dtw_distance_matches_naive_unequal_lengths(self):
        a = RNG.normal(size=(9, 2))
        b = RNG.normal(size=(14, 2))
        assert abs(dtw_distance(a, b) - _naive_dtw(a, b, None)) <= ATOL

    @pytest.mark.parametrize("backend", ["reference", "pruned"])
    def test_nearest_neighbors_match_naive_under_both_backends(self, backend):
        queries = RNG.normal(size=(3, 10, 3))
        train = RNG.normal(size=(6, 10, 3))
        window = 3
        idx, dist = dtw_nearest_neighbors(
            queries, train, window=window, backend=backend
        )
        for qi in range(queries.shape[0]):
            naive = [_naive_dtw(queries[qi], row, window) for row in train]
            best = int(np.argmin(naive))
            assert idx[qi, 0] == best
            assert abs(dist[qi, 0] - naive[best]) <= ATOL

    @pytest.mark.parametrize("backend", ["reference", "pruned"])
    def test_backends_bit_identical_multichannel(self, backend):
        queries = RNG.normal(size=(4, 11, 4))
        train = RNG.normal(size=(7, 11, 4))
        idx_ref, dist_ref = dtw_nearest_neighbors(
            queries, train, window=0.2, n_neighbors=3, backend="reference"
        )
        idx, dist = dtw_nearest_neighbors(
            queries, train, window=0.2, n_neighbors=3, backend=backend
        )
        assert np.array_equal(idx, idx_ref)
        assert np.array_equal(dist, dist_ref)


class TestCausalZnormNaive:
    def test_causal_znormalize_matches_per_channel_loop(self):
        # A trailing window spanning the whole stream with min_periods=1 is
        # the expanding (every-sample-seen-so-far) statistic.
        window = RNG.normal(size=(20, 3))
        result = causal_znormalize(
            window, window=20, min_periods=1, channel_axis=-1
        )
        assert np.allclose(result, _naive_causal_znorm(window), atol=ATOL)

    def test_causal_znormalize_trailing_window_matches_loop(self):
        window = RNG.normal(size=(20, 3))
        trailing = 6
        result = causal_znormalize(
            window, window=trailing, min_periods=1, channel_axis=-1
        )
        expected = np.zeros_like(window)
        for c in range(window.shape[1]):
            for t in range(window.shape[0]):
                seen = window[max(0, t - trailing + 1) : t + 1, c]
                std = seen.std()
                if std >= 1e-12:
                    expected[t, c] = (window[t, c] - seen.mean()) / std
        assert np.allclose(result, expected, atol=ATOL)

    def test_batch_kernel_matches_per_channel_loop(self):
        windows = RNG.normal(size=(5, 16, 2))
        result = causal_znormalize_batch(windows)
        for row in range(windows.shape[0]):
            assert np.allclose(result[row], _naive_causal_znorm(windows[row]), atol=ATOL)

    def test_running_stats_match_per_channel_loop(self):
        window = RNG.normal(size=(18, 4))
        stats = RunningCausalStats(capacity=1, n_channels=4)
        streamed = np.vstack(
            [stats.push(np.asarray([0]), window[t]) for t in range(18)]
        )
        assert streamed.shape == window.shape
        assert np.allclose(streamed, _naive_causal_znorm(window), atol=ATOL)


CLASSIFIERS = [
    lambda: ECTSClassifier(min_support=0.0, min_length=4, checkpoint_step=2),
    lambda: EDSCClassifier(position_step=6, max_candidates_per_class=40),
    lambda: TEASERClassifier(n_checkpoints=5),
    lambda: ProbabilityThresholdClassifier(threshold=0.7, min_length=4, checkpoint_step=2),
]


class TestTrailingSingletonBitEquality:
    """(n, L, 1) must be indistinguishable from the legacy (n, L) layout."""

    @pytest.mark.parametrize("make", CLASSIFIERS)
    @pytest.mark.parametrize("znorm", ["none", "window", "causal"])
    def test_classifier_decisions_bit_identical(self, make, znorm):
        rng = np.random.default_rng(5)
        series = rng.normal(size=(18, 24))
        labels = np.repeat([0, 1], 9)
        series[labels == 1, 6:18] += 1.5
        if znorm == "window":
            series = znormalize(series)
        elif znorm == "causal":
            series = causal_znormalize_batch(series)

        flat = make().fit(series, labels)
        cube = make().fit(series[:, :, None], labels)
        for row in series:
            a = flat.predict_early(row)
            b = cube.predict_early(row[:, None])
            assert (a.label, a.trigger_length, a.confidence) == (
                b.label,
                b.trigger_length,
                b.confidence,
            )
        batch_flat = flat.predict_early_batch(series)
        batch_cube = cube.predict_early_batch(series[:, :, None])
        for a, b in zip(batch_flat, batch_cube):
            assert (a.label, a.trigger_length, a.confidence) == (
                b.label,
                b.trigger_length,
                b.confidence,
            )

    def test_distances_bit_identical(self):
        queries = RNG.normal(size=(3, 10))
        train = RNG.normal(size=(5, 12))
        flat = batch_prefix_distances(queries, train, [2, 10])
        cube = batch_prefix_distances(queries[:, :, None], train[:, :, None], [2, 10])
        assert np.array_equal(flat, cube)
        flat_dtw = dtw_nearest_neighbors(queries, train, window=2)
        cube_dtw = dtw_nearest_neighbors(
            queries[:, :, None], train[:, :, None], window=2
        )
        assert np.array_equal(flat_dtw[0], cube_dtw[0])
        assert np.array_equal(flat_dtw[1], cube_dtw[1])


class TestPrePRPickleBackCompat:
    def test_model_pickled_without_channel_attribute_is_univariate(self):
        # Models unpickled from caches written before the multichannel data
        # model (experiment prepare cache, serving warm reload) carry no
        # _train_channels; they must read as univariate, not raise.
        rng = np.random.default_rng(3)
        model = ProbabilityThresholdClassifier(threshold=0.7, min_length=4)
        series = rng.normal(size=(8, 16))
        model.fit(series, np.repeat([0, 1], 4))

        state = dict(pickle.loads(pickle.dumps(model)).__dict__)
        del state["_train_channels"]  # what a pre-multichannel pickle holds
        stale = ProbabilityThresholdClassifier.__new__(ProbabilityThresholdClassifier)
        stale.__setstate__(state)  # the path pickle.loads takes

        assert stale.n_channels_ == 1
        outcome = stale.predict_early(series[0])
        expected = model.predict_early(series[0])
        assert (outcome.label, outcome.trigger_length) == (
            expected.label,
            expected.trigger_length,
        )
        stream = stale.open_stream()
        stream.push(0.5)


class TestShardBackCompat:
    def test_version_1_manifest_reads_as_univariate(self, tmp_path):
        series = RNG.normal(size=(10, 8))
        labels = np.arange(10)
        write_shards((series, labels), tmp_path, shard_exemplars=4)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema_version"] == SHARD_SCHEMA_VERSION

        # Rewrite the manifest as a pre-multichannel version-1 header: no
        # n_channels field at all, exactly what existing shard dirs contain.
        manifest["schema_version"] = 1
        del manifest["n_channels"]
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")

        dataset = ShardedDataset.open(tmp_path)
        assert dataset.n_channels == 1
        assert dataset.series.shape == (10, 8)
        assert dataset.series.ndim == 2
        assert np.array_equal(np.asarray(dataset.series), series)
        dataset.verify()  # hashes cover the data files, not the manifest

    def test_multichannel_roundtrip_records_channels(self, tmp_path):
        dataset = make_multichannel_cbf_dataset(n_per_class=4, length=40)
        sharded = write_shards(dataset, tmp_path / "mv", shard_exemplars=5)
        assert sharded.n_channels == dataset.n_channels
        manifest = json.loads((tmp_path / "mv" / "manifest.json").read_text())
        assert manifest["schema_version"] == 2
        assert manifest["n_channels"] == dataset.n_channels
        assert np.array_equal(np.asarray(sharded.series), dataset.series)

    def test_unknown_future_schema_rejected(self, tmp_path):
        series = RNG.normal(size=(4, 6))
        write_shards((series, np.arange(4)), tmp_path, shard_exemplars=4)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 99
        manifest_path.write_text(json.dumps(manifest) + "\n")
        with pytest.raises(ValueError, match="unsupported shard schema"):
            ShardedDataset.open(tmp_path)
