"""Golden-summary snapshots and sequential/parallel equivalence.

The files under ``tests/golden/`` pin the ``--fast`` text summary of every
experiment.  They are the repo's strongest regression guard: any refactor
of the experiment modules, the registry, the scheduler or the cache that
changes a single byte of a summary fails here.  The parallel test then
asserts the process-pool scheduler reproduces those exact bytes, so
``--jobs N`` can never drift from the sequential golden path.

Regenerate (only after an intentional change) with::

    PYTHONPATH=src python -c "
    from pathlib import Path
    from repro.experiments.registry import available_experiments
    from repro.runtime.scheduler import execute_spec
    for name in available_experiments():
        result = execute_spec(name, fast=True)
        Path('tests/golden', name + '.fast.txt').write_text(result.summary + '\\n')"
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.registry import available_experiments
from repro.runtime.artifacts import load_artifact
from repro.runtime.cache import PrepareCache
from repro.runtime.scheduler import run_experiments

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

ALL_EXPERIMENTS = available_experiments()


@pytest.fixture(scope="session")
def runtime_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("runtime")
    return {"cache": root / "cache", "results": root / "results"}


@pytest.fixture(scope="session")
def sequential_results(runtime_dirs):
    """All experiments, fast mode, sequential, cold cache (which it warms)."""
    cache = PrepareCache(runtime_dirs["cache"])
    results = run_experiments(ALL_EXPERIMENTS, fast=True, jobs=1, cache=cache)
    return {result.name: result for result in results}


class TestGoldenSummaries:
    def test_every_experiment_has_a_golden_file(self):
        expected = {f"{name}.fast.txt" for name in ALL_EXPERIMENTS}
        present = {path.name for path in GOLDEN_DIR.glob("*.fast.txt")}
        assert expected == present

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_fast_summary_matches_golden(self, name, sequential_results):
        golden = (GOLDEN_DIR / f"{name}.fast.txt").read_text()
        assert sequential_results[name].summary + "\n" == golden

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_metrics_are_non_empty_and_jsonable(self, name, sequential_results):
        import json

        metrics = sequential_results[name].metrics
        assert metrics, f"{name} produced no metrics"
        json.dumps(dict(metrics))  # must not raise


@pytest.fixture(scope="session")
def parallel_results(sequential_results, runtime_dirs):
    """All experiments again, fast mode, across 4 worker processes.

    The cache directory was warmed by the sequential fixture, so this pass
    re-runs only the compute/render stages -- exactly the code whose output
    must not depend on the execution mode.
    """
    cache = PrepareCache(runtime_dirs["cache"])
    return run_experiments(
        ALL_EXPERIMENTS,
        fast=True,
        jobs=4,
        cache=cache,
        results_dir=runtime_dirs["results"],
    )


class TestParallelEquivalence:
    def test_jobs4_summaries_byte_identical_to_sequential(
        self, sequential_results, parallel_results
    ):
        assert [result.name for result in parallel_results] == ALL_EXPERIMENTS
        for result in parallel_results:
            sequential = sequential_results[result.name]
            assert result.summary == sequential.summary, result.name
            assert result.raw is None  # stripped at the process boundary
            assert dict(result.parameters) == dict(sequential.parameters)

    def test_parallel_run_wrote_parseable_artifacts(
        self, sequential_results, parallel_results, runtime_dirs
    ):
        # Re-assert from disk the contract CI relies on.
        artifacts = sorted(runtime_dirs["results"].glob("*.json"))
        assert {path.stem for path in artifacts} == set(ALL_EXPERIMENTS)
        for path in artifacts:
            payload = load_artifact(path)
            assert payload["experiment"] == path.stem
            assert payload["metrics"], path.name
            assert payload["summary"] == sequential_results[path.stem].summary
            assert payload["seed"] == sequential_results[path.stem].seed
