"""Unit tests for repro.distance.znorm."""

import numpy as np
import pytest

from repro.distance.znorm import (
    causal_znormalize,
    is_znormalized,
    znormalize,
    znormalize_prefix,
)


class TestZnormalize:
    def test_zero_mean_unit_std(self):
        series = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        normalized = znormalize(series)
        assert abs(normalized.mean()) < 1e-12
        assert abs(normalized.std() - 1.0) < 1e-12

    def test_preserves_shape_ordering(self):
        series = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        normalized = znormalize(series)
        assert np.array_equal(np.argsort(series), np.argsort(normalized))

    def test_constant_series_maps_to_zeros(self):
        assert np.array_equal(znormalize(np.full(10, 7.0)), np.zeros(10))

    def test_invariant_to_offset_and_scale(self):
        rng = np.random.default_rng(0)
        series = rng.standard_normal(50)
        shifted = 3.5 * series + 11.0
        np.testing.assert_allclose(znormalize(series), znormalize(shifted), atol=1e-10)

    def test_2d_normalises_each_row(self):
        rows = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 60.0]])
        normalized = znormalize(rows)
        for row in normalized:
            assert abs(row.mean()) < 1e-12
            assert abs(row.std() - 1.0) < 1e-12

    def test_2d_with_constant_row(self):
        rows = np.array([[1.0, 2.0, 3.0], [5.0, 5.0, 5.0]])
        normalized = znormalize(rows)
        assert np.array_equal(normalized[1], np.zeros(3))
        assert abs(normalized[0].std() - 1.0) < 1e-12

    def test_ddof_changes_scale(self):
        series = np.array([1.0, 2.0, 3.0, 4.0])
        pop = znormalize(series, ddof=0)
        sample = znormalize(series, ddof=1)
        assert pop.std() > sample.std()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            znormalize(np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            znormalize(np.array([1.0, np.nan, 3.0]))

    def test_3d_is_per_exemplar_per_channel(self):
        rng = np.random.default_rng(7)
        batch = rng.standard_normal((2, 30, 4))
        out = znormalize(batch)
        for i in range(2):
            for c in range(4):
                np.testing.assert_allclose(
                    out[i, :, c], znormalize(batch[i, :, c]), atol=1e-12
                )

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            znormalize(np.zeros((2, 3, 4, 5)))


class TestZnormalizePrefix:
    def test_uses_only_prefix_statistics(self):
        series = np.array([1.0, 2.0, 3.0, 100.0, 200.0])
        prefix = znormalize_prefix(series, 3)
        np.testing.assert_allclose(prefix, znormalize(series[:3]))

    def test_differs_from_whole_series_normalisation(self):
        rng = np.random.default_rng(1)
        series = np.concatenate([rng.standard_normal(20), rng.standard_normal(20) + 10])
        prefix = znormalize_prefix(series, 20)
        whole = znormalize(series)[:20]
        assert not np.allclose(prefix, whole)

    def test_full_length_prefix_equals_batch(self):
        series = np.array([1.0, 5.0, 2.0, 8.0])
        np.testing.assert_allclose(znormalize_prefix(series, 4), znormalize(series))

    def test_rejects_bad_prefix_length(self):
        series = np.arange(5.0)
        with pytest.raises(ValueError):
            znormalize_prefix(series, 0)
        with pytest.raises(ValueError):
            znormalize_prefix(series, 6)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            znormalize_prefix(np.zeros((3, 4)), 2)


class TestCausalZnormalize:
    def test_output_length_matches_input(self):
        series = np.arange(30.0)
        out = causal_znormalize(series, window=5)
        assert out.shape == series.shape

    def test_warmup_region_is_zero(self):
        series = np.arange(30.0)
        out = causal_znormalize(series, window=5, min_periods=5)
        assert np.array_equal(out[:4], np.zeros(4))
        assert np.any(out[4:] != 0)

    def test_never_uses_future_values(self):
        # Changing the future must not change the causal normalisation of the past.
        rng = np.random.default_rng(2)
        series = rng.standard_normal(50)
        modified = series.copy()
        modified[30:] += 100.0
        a = causal_znormalize(series, window=8)
        b = causal_znormalize(modified, window=8)
        np.testing.assert_allclose(a[:30], b[:30])

    def test_constant_window_gives_zero(self):
        series = np.full(20, 3.0)
        out = causal_znormalize(series, window=4)
        assert np.array_equal(out, np.zeros(20))

    def test_matches_direct_computation(self):
        rng = np.random.default_rng(3)
        series = rng.standard_normal(40)
        window = 6
        out = causal_znormalize(series, window=window)
        for i in range(window - 1, 40):
            seen = series[i - window + 1 : i + 1]
            expected = (series[i] - seen.mean()) / seen.std()
            assert out[i] == pytest.approx(expected, rel=1e-9)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            causal_znormalize(np.arange(10.0), window=0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            causal_znormalize(np.zeros((3, 4)), window=2)


class TestIsZnormalized:
    def test_accepts_normalised_series(self):
        rng = np.random.default_rng(4)
        assert is_znormalized(znormalize(rng.standard_normal(100)))

    def test_rejects_shifted_series(self):
        rng = np.random.default_rng(5)
        assert not is_znormalized(znormalize(rng.standard_normal(100)) + 0.5)

    def test_accepts_constant_zero_series(self):
        assert is_znormalized(np.zeros(10))

    def test_rejects_constant_nonzero_series(self):
        assert not is_znormalized(np.full(10, 2.0))
