"""Unit tests for the prefix and inclusion analyses."""

import numpy as np
import pytest

from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.core.inclusion_analysis import ZipfLexiconModel, analyze_lexical_inclusions
from repro.core.prefix_analysis import analyze_lexical_prefixes, count_false_triggers
from repro.data.words import LEXICON, WordSynthesizer, make_word_dataset


class TestLexicalPrefixAnalysis:
    def test_cat_dog_families_found(self):
        result = analyze_lexical_prefixes(["cat", "dog"], LEXICON)
        assert not result.collision_free
        assert result.collision_counts["cat"] >= 4  # cathy, cattle, catalog, catechism, catholic
        assert result.collision_counts["dog"] >= 3  # dogmatic, dogmatized, doggery, doggedness
        confounders = {c.confounder for c in result.collisions_for("cat")}
        assert "catalog" in confounders and "catechism" in confounders

    def test_all_collisions_are_prefix_kind(self):
        result = analyze_lexical_prefixes(["gun"], LEXICON)
        assert all(c.kind == "prefix" for c in result.collisions)
        assert all(0 < c.overlap_fraction < 1 for c in result.collisions)

    def test_collision_free_target(self):
        result = analyze_lexical_prefixes(["xylophone"], LEXICON)
        assert result.collision_free
        assert result.collision_counts["xylophone"] == 0

    def test_sequence_lexicon_accepted(self):
        result = analyze_lexical_prefixes(["cat"], ["cat", "catalog", "dog"])
        assert result.collision_counts["cat"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_lexical_prefixes([], LEXICON)
        with pytest.raises(ValueError):
            analyze_lexical_prefixes(["cat"], [])


class TestLexicalInclusionAnalysis:
    def test_point_inclusions_found(self):
        result = analyze_lexical_inclusions(["point", "gun"], LEXICON)
        point_confounders = {c.confounder for c in result.collisions if c.target == "point"}
        assert "appointment" in point_confounders
        assert "disappointing" in point_confounders
        gun_confounders = {c.confounder for c in result.collisions if c.target == "gun"}
        assert "begun" in gun_confounders
        assert "burgundy" in gun_confounders

    def test_prefix_entries_excluded_by_default(self):
        result = analyze_lexical_inclusions(["cat"], LEXICON)
        confounders = {c.confounder for c in result.collisions}
        assert "catalog" not in confounders  # that one is a prefix collision

    def test_prefix_entries_included_on_request(self):
        result = analyze_lexical_inclusions(["cat"], LEXICON, include_prefixes=True)
        confounders = {c.confounder for c in result.collisions}
        assert "catalog" in confounders

    def test_weight_family(self):
        result = analyze_lexical_inclusions(["weight"], LEXICON)
        confounders = {c.confounder for c in result.collisions}
        assert {"lightweight", "paperweight"} <= confounders


class TestZipfLexiconModel:
    def test_frequencies_sum_to_one(self):
        model = ZipfLexiconModel(list(LEXICON))
        total = sum(model.frequency(w) for w in LEXICON)
        assert total == pytest.approx(1.0)

    def test_shorter_words_more_frequent_by_default(self):
        model = ZipfLexiconModel(["cat", "catalog", "catechism"])
        assert model.frequency("cat") > model.frequency("catalog") > model.frequency("catechism")

    def test_explicit_ranks(self):
        model = ZipfLexiconModel(["a", "b"], ranks={"a": 2, "b": 1})
        assert model.frequency("b") > model.frequency("a")

    def test_explicit_ranks_must_cover_lexicon(self):
        with pytest.raises(ValueError):
            ZipfLexiconModel(["a", "b"], ranks={"a": 1})

    def test_innocuous_occurrence_ratio_exceeds_one_for_rich_families(self):
        model = ZipfLexiconModel(list(LEXICON))
        confounders = [w for w in LEXICON if "gun" in w and w != "gun"]
        ratio = model.innocuous_occurrence_ratio("gun", confounders)
        assert ratio > 0.5  # several confounders, each with non-trivial frequency

    def test_sample_respects_lexicon(self):
        model = ZipfLexiconModel(["cat", "dog", "gun"])
        words = model.sample(50, np.random.default_rng(0))
        assert set(words) <= {"cat", "dog", "gun"}

    def test_unknown_word_raises(self):
        model = ZipfLexiconModel(["cat"])
        with pytest.raises(KeyError):
            model.frequency("dog")

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfLexiconModel([])
        with pytest.raises(ValueError):
            ZipfLexiconModel(["cat"], exponent=0.0)
        with pytest.raises(ValueError):
            ZipfLexiconModel(["cat"]).sample(0, np.random.default_rng(0))


class TestCountFalseTriggers:
    @pytest.fixture(scope="class")
    def word_classifier(self):
        dataset = make_word_dataset(n_per_class=12, znormalize=False, seed=3)
        model = ProbabilityThresholdClassifier(threshold=0.8, min_length=20, checkpoint_step=3)
        return model.fit(dataset.series, dataset.labels)

    def test_prefix_confounders_trigger(self, word_classifier):
        synthesizer = WordSynthesizer(seed=3)
        rng = np.random.default_rng(10)
        confounders = [
            synthesizer.synthesize_word(w, rng=rng)
            for w in ("cathy", "dogmatic", "catechism", "dogmatized", "catholic", "doggery")
        ]
        report = count_false_triggers(word_classifier, confounders)
        assert report.n_confounders == 6
        # The prefix problem: most of these longer words fire the classifier.
        assert report.trigger_rate >= 0.5
        assert report.mean_trigger_fraction is not None
        assert report.mean_trigger_fraction < 1.0

    def test_requires_fitted_classifier(self):
        with pytest.raises(ValueError):
            count_false_triggers(ProbabilityThresholdClassifier(), [np.zeros(50)])

    def test_rejects_all_too_short(self, word_classifier):
        with pytest.raises(ValueError):
            count_false_triggers(word_classifier, [np.zeros(3)])

    def test_rejects_2d_confounder(self, word_classifier):
        with pytest.raises(ValueError):
            count_false_triggers(word_classifier, [np.zeros((3, 50))])
