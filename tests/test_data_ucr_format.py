"""Unit tests for repro.data.ucr_format."""

import numpy as np
import pytest

from repro.data.ucr_format import UCRDataset, train_test_split


def _toy_dataset(n_per_class: int = 4, length: int = 10) -> UCRDataset:
    rng = np.random.default_rng(0)
    series = rng.standard_normal((2 * n_per_class, length))
    labels = np.asarray(["a"] * n_per_class + ["b"] * n_per_class)
    return UCRDataset(name="toy", series=series, labels=labels)


class TestConstruction:
    def test_basic_properties(self):
        dataset = _toy_dataset()
        assert len(dataset) == 8
        assert dataset.n_exemplars == 8
        assert dataset.series_length == 10
        assert dataset.classes == ("a", "b")
        assert dataset.n_classes == 2
        assert dataset.class_counts() == {"a": 4, "b": 4}

    def test_rejects_1d_series(self):
        with pytest.raises(ValueError):
            UCRDataset(name="bad", series=np.zeros(5), labels=np.array(["a"]))

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError):
            UCRDataset(name="bad", series=np.zeros((3, 5)), labels=np.array(["a", "b"]))

    def test_rejects_non_finite(self):
        series = np.zeros((2, 4))
        series[0, 0] = np.nan
        with pytest.raises(ValueError):
            UCRDataset(name="bad", series=series, labels=np.array(["a", "b"]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UCRDataset(name="bad", series=np.zeros((0, 5)), labels=np.array([]))


class TestTransforms:
    def test_z_normalized_sets_flag_and_normalises(self):
        dataset = _toy_dataset()
        normalized = dataset.z_normalized()
        assert normalized.znormalized
        assert normalized.verify_znormalized()
        assert not dataset.znormalized  # original untouched

    def test_truncated_keeps_prefix(self):
        dataset = _toy_dataset()
        truncated = dataset.truncated(4)
        assert truncated.series_length == 4
        np.testing.assert_allclose(truncated.series, dataset.series[:, :4])
        assert truncated.metadata["truncated_to"] == 4

    def test_truncated_renormalize(self):
        dataset = _toy_dataset()
        truncated = dataset.truncated(5, renormalize=True)
        assert truncated.znormalized
        assert truncated.verify_znormalized()

    def test_truncated_rejects_bad_length(self):
        dataset = _toy_dataset()
        with pytest.raises(ValueError):
            dataset.truncated(0)
        with pytest.raises(ValueError):
            dataset.truncated(99)

    def test_subset_preserves_alignment(self):
        dataset = _toy_dataset()
        subset = dataset.subset([0, 5, 7])
        assert subset.n_exemplars == 3
        np.testing.assert_allclose(subset.series[1], dataset.series[5])
        assert subset.labels[1] == dataset.labels[5]

    def test_subset_rejects_empty(self):
        with pytest.raises(ValueError):
            _toy_dataset().subset([])

    def test_exemplars_of_class(self):
        dataset = _toy_dataset()
        rows = dataset.exemplars_of_class("a")
        assert rows.shape == (4, 10)

    def test_exemplars_of_unknown_class_raises(self):
        with pytest.raises(KeyError):
            _toy_dataset().exemplars_of_class("zzz")

    def test_shuffled_preserves_multiset(self):
        dataset = _toy_dataset()
        shuffled = dataset.shuffled(np.random.default_rng(1))
        assert sorted(shuffled.labels.tolist()) == sorted(dataset.labels.tolist())
        assert shuffled.series.sum() == pytest.approx(dataset.series.sum())

    def test_concatenate(self):
        a = _toy_dataset()
        b = _toy_dataset()
        combined = a.concatenate(b)
        assert combined.n_exemplars == 16

    def test_concatenate_length_mismatch(self):
        a = _toy_dataset(length=10)
        b = _toy_dataset(length=12)
        with pytest.raises(ValueError):
            a.concatenate(b)


class TestTSVRoundTrip:
    def test_round_trip_preserves_values(self, tmp_path):
        dataset = _toy_dataset()
        path = dataset.to_tsv(tmp_path / "toy.tsv")
        loaded = UCRDataset.from_tsv(path)
        np.testing.assert_allclose(loaded.series, dataset.series, rtol=1e-9)
        assert list(loaded.labels) == list(dataset.labels)

    def test_integer_labels_preserved_as_int(self):
        series = np.arange(12.0).reshape(3, 4)
        dataset = UCRDataset(name="ints", series=series, labels=np.array([1, 2, 1]))
        loaded = UCRDataset.from_tsv_string(dataset.to_tsv_string())
        assert loaded.labels.dtype.kind == "i"

    def test_comma_separated_accepted(self):
        text = "a,1,2,3\nb,4,5,6\n"
        dataset = UCRDataset.from_tsv_string(text)
        assert dataset.n_exemplars == 2
        assert dataset.series_length == 3

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            UCRDataset.from_tsv_string("a\t1\t2\nb\t3\n")

    def test_rejects_empty_text(self):
        with pytest.raises(ValueError):
            UCRDataset.from_tsv_string("\n\n")

    def test_rejects_row_without_values(self):
        with pytest.raises(ValueError):
            UCRDataset.from_tsv_string("a\n")


class TestTrainTestSplit:
    def test_stratified_split_preserves_classes(self):
        dataset = _toy_dataset(n_per_class=8)
        train, test = train_test_split(dataset, train_fraction=0.25)
        assert set(train.classes) == {"a", "b"}
        assert set(test.classes) == {"a", "b"}
        assert train.n_exemplars + test.n_exemplars == dataset.n_exemplars

    def test_partitions_are_disjoint(self):
        dataset = _toy_dataset(n_per_class=8)
        train, test = train_test_split(dataset, train_fraction=0.5)
        train_rows = {tuple(row) for row in train.series}
        test_rows = {tuple(row) for row in test.series}
        assert not train_rows & test_rows

    def test_fraction_bounds(self):
        dataset = _toy_dataset()
        with pytest.raises(ValueError):
            train_test_split(dataset, train_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(dataset, train_fraction=1.0)

    def test_unstratified_split(self):
        dataset = _toy_dataset(n_per_class=10)
        train, test = train_test_split(dataset, train_fraction=0.3, stratified=False)
        assert train.n_exemplars + test.n_exemplars == dataset.n_exemplars

    def test_names_annotated(self):
        dataset = _toy_dataset()
        train, test = train_test_split(dataset)
        assert train.name.endswith("-train")
        assert test.name.endswith("-test")
