"""Equivalence and behaviour tests for the incremental prefix-distance engine.

The engine's whole value proposition is that it is *numerically the same
computation* as the naive per-prefix recomputation, just with the redundant
work removed -- so these tests pin the results to the naive
:func:`repro.distance.euclidean.euclidean_distance` /
:func:`repro.distance.dtw.dtw_distance` to within 1e-10.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.gunpoint import make_gunpoint_dataset
from repro.data.random_walk import smoothed_random_walk
from repro.distance.dtw import dtw_distance
from repro.distance.engine import (
    PrefixDistanceEngine,
    PrefixDTWEngine,
    batch_prefix_distances,
    dtw_pairwise_distances,
    iter_prefix_distances,
    pairwise_prefix_distances,
)
from repro.distance.euclidean import euclidean_distance, pairwise_euclidean
from repro.distance.znorm import znormalize

TOLERANCE = 1e-10


def _random_walk_batch(rng: np.random.Generator, n: int, length: int) -> np.ndarray:
    return np.vstack(
        [smoothed_random_walk(length, smoothing=4, seed=rng) for _ in range(n)]
    )


@pytest.fixture(scope="module")
def walks():
    rng = np.random.default_rng(7)
    train = _random_walk_batch(rng, 9, 60)
    queries = _random_walk_batch(rng, 5, 60)
    return queries, train


def _naive_prefix_distances(queries, train, lengths):
    out = np.empty((len(lengths), queries.shape[0], train.shape[0]))
    for k, length in enumerate(lengths):
        for i, q in enumerate(queries):
            for j, t in enumerate(train):
                out[k, i, j] = euclidean_distance(q[:length], t[:length])
    return out


class TestPrefixDistanceEngine:
    def test_matches_naive_on_random_walks(self, walks):
        queries, train = walks
        lengths = [1, 2, 7, 23, 59, 60]
        batched = pairwise_prefix_distances(queries, train, lengths)
        naive = _naive_prefix_distances(queries, train, lengths)
        assert batched.shape == naive.shape
        np.testing.assert_allclose(batched, naive, atol=TOLERANCE, rtol=0)

    def test_matches_naive_on_gunpoint_like_data(self):
        train_ds, test_ds = make_gunpoint_dataset(
            n_train_per_class=5, n_test_per_class=3, seed=11
        )
        lengths = list(range(1, train_ds.series_length + 1, 13)) + [train_ds.series_length]
        lengths = sorted(set(lengths))
        batched = pairwise_prefix_distances(test_ds.series, train_ds.series, lengths)
        naive = _naive_prefix_distances(test_ds.series, train_ds.series, lengths)
        np.testing.assert_allclose(batched, naive, atol=TOLERANCE, rtol=0)

    def test_znormalized_variant_matches_naive(self, walks):
        """Z-normalised series are the paper's canonical input; same guarantee."""
        queries, train = walks
        zq, zt = znormalize(queries), znormalize(train)
        lengths = [1, 5, 30, 60]
        batched = pairwise_prefix_distances(zq, zt, lengths)
        naive = _naive_prefix_distances(zq, zt, lengths)
        np.testing.assert_allclose(batched, naive, atol=TOLERANCE, rtol=0)

    def test_prefix_length_one_and_full_length_edges(self, walks):
        queries, train = walks
        full = train.shape[1]
        batched = pairwise_prefix_distances(queries, train, [1, full])
        np.testing.assert_allclose(
            batched[0],
            np.abs(queries[:, :1] - train[:, 0][None, :]),
            atol=TOLERANCE,
            rtol=0,
        )
        np.testing.assert_allclose(
            batched[1], pairwise_euclidean(queries, train), atol=1e-8, rtol=0
        )

    def test_every_length_incrementally(self, walks):
        """advance_to one sample at a time equals the naive slice recompute."""
        queries, train = walks
        engine = PrefixDistanceEngine(train).start(queries)
        for length in range(1, train.shape[1] + 1):
            engine.advance_to(length)
            got = engine.distances()
            want = _naive_prefix_distances(queries, train, [length])[0]
            np.testing.assert_allclose(got, want, atol=TOLERANCE, rtol=0)

    def test_squared_distances_consistent(self, walks):
        queries, train = walks
        engine = PrefixDistanceEngine(train).start(queries)
        engine.advance_to(17)
        np.testing.assert_allclose(
            np.sqrt(engine.squared_distances()), engine.distances(), atol=TOLERANCE
        )

    def test_single_series_query(self, walks):
        queries, train = walks
        engine = PrefixDistanceEngine(train).start(queries[0])
        sq = engine.advance_to(10)
        assert sq.shape == (1, train.shape[0])

    def test_prefixes_only_grow(self, walks):
        queries, train = walks
        engine = PrefixDistanceEngine(train).start(queries)
        engine.advance_to(10)
        with pytest.raises(ValueError):
            engine.advance_to(5)

    def test_requires_start(self, walks):
        _, train = walks
        engine = PrefixDistanceEngine(train)
        with pytest.raises(RuntimeError):
            engine.advance_to(3)
        with pytest.raises(RuntimeError):
            engine.distances()

    def test_rejects_overlong_queries(self, walks):
        queries, train = walks
        engine = PrefixDistanceEngine(train[:, :30])
        with pytest.raises(ValueError):
            engine.start(queries)

    def test_rejects_bad_train(self):
        with pytest.raises(ValueError):
            PrefixDistanceEngine(np.ones(5))
        with pytest.raises(ValueError):
            PrefixDistanceEngine(np.ones((0, 3)))


class TestIterAndBatchedHelpers:
    def test_iter_yields_requested_lengths_in_order(self, walks):
        queries, train = walks
        lengths = [3, 9, 27]
        seen = [length for length, _ in iter_prefix_distances(queries, train, lengths)]
        assert seen == lengths

    def test_iter_rejects_non_increasing_lengths(self, walks):
        queries, train = walks
        with pytest.raises(ValueError):
            list(iter_prefix_distances(queries, train, [5, 5]))
        with pytest.raises(ValueError):
            list(iter_prefix_distances(queries, train, [9, 3]))
        with pytest.raises(ValueError):
            list(iter_prefix_distances(queries, train, []))

    def test_iter_matrices_are_independent_copies(self, walks):
        queries, train = walks
        first, second = list(iter_prefix_distances(queries, train, [4, 8]))
        first[1][:] = -1.0
        assert np.all(second[1] >= 0.0)

    def test_squared_flag(self, walks):
        queries, train = walks
        plain = pairwise_prefix_distances(queries, train, [12])
        squared = pairwise_prefix_distances(queries, train, [12], squared=True)
        np.testing.assert_allclose(plain**2, squared, atol=TOLERANCE)


class TestBatchPrefixDistances:
    """The one-shot cumulative-sum kernel under the batched prediction paths."""

    def test_matches_naive_recomputation(self, walks):
        queries, train = walks
        lengths = [1, 2, 7, 33, 60]
        batched = batch_prefix_distances(queries, train, lengths)
        np.testing.assert_allclose(
            batched, _naive_prefix_distances(queries, train, lengths), atol=TOLERANCE
        )

    def test_matches_naive_on_znormalized_data(self, walks):
        queries, train = walks
        queries, train = znormalize(queries), znormalize(train)
        lengths = [2, 15, 60]
        batched = batch_prefix_distances(queries, train, lengths)
        np.testing.assert_allclose(
            batched, _naive_prefix_distances(queries, train, lengths), atol=TOLERANCE
        )

    def test_matches_incremental_engine_exactly(self, walks):
        """Same term sequence as the per-sample sweep: bit-identical sums."""
        queries, train = walks
        lengths = list(range(1, 61))
        batched = batch_prefix_distances(queries, train, lengths, squared=True)
        sweep = PrefixDistanceEngine(train).open(queries)
        for k, length in enumerate(lengths):
            assert np.array_equal(sweep.advance_to(length), batched[k])

    def test_chunking_is_invisible(self, walks):
        queries, train = walks
        lengths = [5, 40]
        whole = batch_prefix_distances(queries, train, lengths)
        # A budget this small forces one-query chunks.
        chunked = batch_prefix_distances(
            queries, train, lengths, max_block_bytes=train.shape[0] * 60 * 8
        )
        assert np.array_equal(whole, chunked)

    def test_squared_flag(self, walks):
        queries, train = walks
        plain = batch_prefix_distances(queries, train, [12])
        squared = batch_prefix_distances(queries, train, [12], squared=True)
        np.testing.assert_allclose(plain**2, squared, atol=TOLERANCE)

    def test_single_query_promotion(self, walks):
        queries, train = walks
        batched = batch_prefix_distances(queries[0], train, [10])
        assert batched.shape == (1, 1, train.shape[0])
        np.testing.assert_allclose(
            batched[0, 0],
            [euclidean_distance(queries[0][:10], t[:10]) for t in train],
            atol=TOLERANCE,
        )

    def test_validation(self, walks):
        queries, train = walks
        with pytest.raises(ValueError):
            batch_prefix_distances(queries, train, [])
        with pytest.raises(ValueError):
            batch_prefix_distances(queries, train, [9, 3])
        with pytest.raises(ValueError):
            batch_prefix_distances(queries, train, [0])
        with pytest.raises(ValueError):
            batch_prefix_distances(queries, train, [61])
        with pytest.raises(ValueError):
            batch_prefix_distances(queries, train, [5], max_block_bytes=0)
        with pytest.raises(ValueError):
            batch_prefix_distances(np.empty((2, 0)), train, [1])


class TestPrefixDTWEngine:
    def test_unconstrained_matches_naive_dtw(self):
        rng = np.random.default_rng(3)
        train = _random_walk_batch(rng, 4, 25)
        query = smoothed_random_walk(25, smoothing=4, seed=99)
        engine = PrefixDTWEngine(train).start()
        for t in range(1, 26):
            got = engine.append(query[t - 1])
            for j in range(train.shape[0]):
                want = dtw_distance(query[:t], train[j], window=None)
                assert got[j] == pytest.approx(want, abs=TOLERANCE)

    def test_distances_property_matches_last_append(self):
        rng = np.random.default_rng(5)
        train = _random_walk_batch(rng, 3, 15)
        query = smoothed_random_walk(15, smoothing=4, seed=1)
        engine = PrefixDTWEngine(train).start()
        last = None
        for value in query[:7]:
            last = engine.append(value)
        np.testing.assert_allclose(engine.distances(), last, atol=TOLERANCE)

    def test_requires_start_and_samples(self):
        engine = PrefixDTWEngine(np.ones((2, 5)))
        with pytest.raises(RuntimeError):
            engine.append(0.0)
        engine.start()
        with pytest.raises(RuntimeError):
            engine.distances()

    def test_rejects_negative_band(self):
        with pytest.raises(ValueError):
            PrefixDTWEngine(np.ones((2, 5)), band=-1)


class TestRewiredCallers:
    """The hot paths rewired onto the engine must agree with the naive paths."""

    def test_knn_predict_prefixes_matches_truncated_predict(self):
        train_ds, test_ds = make_gunpoint_dataset(
            n_train_per_class=6, n_test_per_class=4, seed=2
        )
        from repro.distance.neighbors import KNeighborsTimeSeriesClassifier

        model = KNeighborsTimeSeriesClassifier().fit(train_ds.series, train_ds.labels)
        lengths = [5, 40, 90, train_ds.series_length]
        batched = model.predict_prefixes(test_ds.series, lengths)
        for k, length in enumerate(lengths):
            naive = (
                KNeighborsTimeSeriesClassifier()
                .fit(train_ds.series[:, :length], train_ds.labels)
                .predict(test_ds.series[:, :length])
            )
            assert list(batched[k]) == list(naive)

    def test_prefix_accuracy_curve_fast_path_matches_naive(self):
        from repro.evaluation.runner import prefix_accuracy_curve

        train_ds, test_ds = make_gunpoint_dataset(
            n_train_per_class=6, n_test_per_class=4, seed=4
        )
        lengths = [10, 50, 100, train_ds.series_length]
        fast = prefix_accuracy_curve(train_ds, test_ds, lengths, renormalize=False)
        naive = {}
        from repro.distance.neighbors import KNeighborsTimeSeriesClassifier

        for length in lengths:
            tr = train_ds.truncated(length)
            te = test_ds.truncated(length)
            model = KNeighborsTimeSeriesClassifier().fit(tr.series, tr.labels)
            naive[length] = model.score(te.series, te.labels)
        assert fast == pytest.approx(naive)


class TestDTWPairwiseDistances:
    def test_matches_scalar_dtw_per_pair(self):
        rng = np.random.default_rng(14)
        queries = rng.standard_normal((6, 35))
        train = rng.standard_normal((5, 28))
        for window in (None, 5, 0.2):
            batched = dtw_pairwise_distances(queries, train, window=window)
            assert batched.shape == (6, 5)
            for i in range(6):
                for j in range(5):
                    naive = dtw_distance(queries[i], train[j], window=window)
                    assert batched[i, j] == pytest.approx(naive, abs=TOLERANCE)

    def test_single_query_promoted_to_batch(self):
        rng = np.random.default_rng(15)
        query = rng.standard_normal(20)
        train = rng.standard_normal((4, 20))
        batched = dtw_pairwise_distances(query, train, window=3)
        assert batched.shape == (1, 4)
        for j in range(4):
            naive = dtw_distance(query, train[j], window=3)
            assert batched[0, j] == pytest.approx(naive, abs=TOLERANCE)

    def test_chunking_does_not_change_results(self):
        rng = np.random.default_rng(16)
        queries = rng.standard_normal((7, 24))
        train = rng.standard_normal((3, 30))
        whole = dtw_pairwise_distances(queries, train, window=0.5)
        chunked = dtw_pairwise_distances(
            queries, train, window=0.5, max_block_bytes=1
        )
        np.testing.assert_array_equal(whole, chunked)

    def test_zero_band_equal_lengths_is_euclidean(self):
        rng = np.random.default_rng(17)
        queries = rng.standard_normal((3, 25))
        train = rng.standard_normal((4, 25))
        batched = dtw_pairwise_distances(queries, train, window=0)
        for i in range(3):
            for j in range(4):
                naive = euclidean_distance(queries[i], train[j])
                assert batched[i, j] == pytest.approx(naive, abs=TOLERANCE)

    def test_validation(self):
        train = np.zeros((2, 5))
        with pytest.raises(ValueError):
            dtw_pairwise_distances(np.zeros((2, 2, 2)), train)
        with pytest.raises(ValueError):
            dtw_pairwise_distances(np.zeros((2, 0)), train)
        with pytest.raises(ValueError):
            dtw_pairwise_distances(np.zeros((2, 5)), train, max_block_bytes=0)
        with pytest.raises(ValueError):
            dtw_pairwise_distances(np.zeros((2, 5)), train, window=1.5)
