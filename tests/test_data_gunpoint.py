"""Unit tests for the synthetic GunPoint generator."""

import numpy as np
import pytest

from repro.data.gunpoint import GUN, POINT, GunPointGenerator, make_gunpoint_dataset
from repro.distance.neighbors import KNeighborsTimeSeriesClassifier


class TestGenerator:
    def test_exemplar_length(self):
        generator = GunPointGenerator(length=150, seed=1)
        assert generator.exemplar(GUN).shape == (150,)
        assert generator.exemplar(POINT).shape == (150,)

    def test_rejects_unknown_label(self):
        with pytest.raises(ValueError):
            GunPointGenerator().exemplar("sword")

    def test_rejects_too_short_length(self):
        with pytest.raises(ValueError):
            GunPointGenerator(length=10)

    def test_deterministic_given_seed(self):
        a = GunPointGenerator(seed=42).generate(n_per_class=3)
        b = GunPointGenerator(seed=42).generate(n_per_class=3)
        np.testing.assert_allclose(a.series, b.series)

    def test_different_seeds_differ(self):
        a = GunPointGenerator(seed=1).generate(n_per_class=3)
        b = GunPointGenerator(seed=2).generate(n_per_class=3)
        assert not np.allclose(a.series, b.series)

    def test_balanced_classes(self):
        dataset = GunPointGenerator(seed=3).generate(n_per_class=7)
        assert dataset.class_counts() == {GUN: 7, POINT: 7}

    def test_resting_tail_is_flat(self):
        # The last third of the exemplar is the resting-hand plateau: its
        # variance should be far smaller than the variance of the action part.
        generator = GunPointGenerator(seed=4)
        exemplar = generator.exemplar(GUN)
        tail = exemplar[120:]
        action = exemplar[30:100]
        assert np.std(tail) < 0.25 * np.std(action)

    def test_gun_class_has_deeper_early_dip(self):
        # The class-discriminating fumble: gun exemplars dip below the rest
        # level early on; point exemplars do not (on average).
        generator = GunPointGenerator(seed=5)
        rng = np.random.default_rng(0)
        gun_minima = [generator.exemplar(GUN, rng).min() for _ in range(20)]
        point_minima = [generator.exemplar(POINT, rng).min() for _ in range(20)]
        assert np.mean(gun_minima) < np.mean(point_minima) - 0.1

    def test_discriminative_region_within_first_half(self):
        start, end = GunPointGenerator(seed=6).discriminative_region()
        assert 0 < start < end < 75


class TestMakeGunpointDataset:
    def test_split_sizes(self):
        train, test = make_gunpoint_dataset(n_train_per_class=5, n_test_per_class=10)
        assert train.n_exemplars == 10
        assert test.n_exemplars == 20

    def test_znormalized_by_default(self):
        train, test = make_gunpoint_dataset(n_train_per_class=5, n_test_per_class=5)
        assert train.verify_znormalized()
        assert test.verify_znormalized()

    def test_raw_option(self):
        train, _ = make_gunpoint_dataset(n_train_per_class=5, n_test_per_class=5, znormalize=False)
        assert not train.znormalized

    def test_train_and_test_disjoint(self):
        train, test = make_gunpoint_dataset(n_train_per_class=5, n_test_per_class=5, znormalize=False)
        train_rows = {tuple(np.round(row, 6)) for row in train.series}
        test_rows = {tuple(np.round(row, 6)) for row in test.series}
        assert not train_rows & test_rows

    def test_full_split_accuracy_matches_real_gunpoint_band(self):
        # The headline property: 1-NN accuracy on the standard 25/75 split is
        # in the low 90s, like the archive's GunPoint (91.3% with ED).
        train, test = make_gunpoint_dataset()
        model = KNeighborsTimeSeriesClassifier().fit(train.series, train.labels)
        accuracy = model.score(test.series, test.labels)
        assert 0.85 <= accuracy <= 0.98

    def test_prefix_supports_full_accuracy(self):
        # The Fig. 9 property: a prefix of roughly a third of the exemplar
        # already matches (or beats) full-length accuracy.
        train, test = make_gunpoint_dataset(znormalize=False)
        full_train = train.truncated(150, renormalize=True)
        full_test = test.truncated(150, renormalize=True)
        model = KNeighborsTimeSeriesClassifier().fit(full_train.series, full_train.labels)
        full_accuracy = model.score(full_test.series, full_test.labels)

        prefix_train = train.truncated(50, renormalize=True)
        prefix_test = test.truncated(50, renormalize=True)
        prefix_model = KNeighborsTimeSeriesClassifier().fit(prefix_train.series, prefix_train.labels)
        prefix_accuracy = prefix_model.score(prefix_test.series, prefix_test.labels)
        assert prefix_accuracy >= full_accuracy - 0.01

    def test_very_short_prefix_near_chance(self):
        # Before the action starts, the two classes are indistinguishable.
        train, test = make_gunpoint_dataset(znormalize=False)
        prefix_train = train.truncated(20, renormalize=True)
        prefix_test = test.truncated(20, renormalize=True)
        model = KNeighborsTimeSeriesClassifier().fit(prefix_train.series, prefix_train.labels)
        accuracy = model.score(prefix_test.series, prefix_test.labels)
        assert accuracy <= 0.70
