"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.stream import ComposedStream, GroundTruthEvent, StreamComposer
from repro.data.ucr_format import UCRDataset
from repro.distance.dtw import dtw_distance
from repro.distance.euclidean import euclidean_distance, znormalized_euclidean_distance
from repro.distance.profile import distance_profile
from repro.distance.znorm import causal_znormalize, znormalize
from repro.streaming.online import RunningCausalStats, incremental_causal_znormalize

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def series_strategy(min_size: int = 4, max_size: int = 60):
    return arrays(dtype=np.float64, shape=st.integers(min_size, max_size), elements=finite_floats)


def nonconstant_series(min_size: int = 4, max_size: int = 60):
    return series_strategy(min_size, max_size).filter(lambda a: float(np.std(a)) > 1e-6)


# ---------------------------------------------------------------------------
# z-normalisation invariants
# ---------------------------------------------------------------------------


@given(nonconstant_series())
@settings(max_examples=60, deadline=None)
def test_znormalize_produces_zero_mean_unit_std(series):
    normalized = znormalize(series)
    assert abs(normalized.mean()) < 1e-7
    assert abs(normalized.std() - 1.0) < 1e-7


@given(nonconstant_series(), st.floats(-50, 50), st.floats(0.1, 10))
@settings(max_examples=60, deadline=None)
def test_znormalize_invariant_under_affine_transform(series, offset, scale):
    np.testing.assert_allclose(
        znormalize(series), znormalize(scale * series + offset), atol=1e-6
    )


@given(nonconstant_series())
@settings(max_examples=60, deadline=None)
def test_znormalize_is_idempotent(series):
    once = znormalize(series)
    twice = znormalize(once)
    np.testing.assert_allclose(once, twice, atol=1e-9)


@given(series_strategy(min_size=10, max_size=80), st.integers(2, 10))
@settings(max_examples=40, deadline=None)
def test_causal_znormalize_is_causal(series, window):
    # Changing the tail of the stream never changes earlier outputs.
    midpoint = len(series) // 2
    modified = series.copy()
    modified[midpoint:] += 37.0
    a = causal_znormalize(series, window=window)
    b = causal_znormalize(modified, window=window)
    np.testing.assert_allclose(a[:midpoint], b[:midpoint], atol=1e-9)


# ---------------------------------------------------------------------------
# Incremental causal z-normalisation (the online streaming engine's running
# statistics) versus the naive per-prefix recomputation (the offline
# detector's O(L^2) reference loop).
# ---------------------------------------------------------------------------


def naive_causal_window(window: np.ndarray) -> np.ndarray:
    """The offline detector's causal normalisation, restated independently."""
    out = np.zeros_like(window)
    for i in range(window.shape[0]):
        seen = window[: i + 1]
        std = seen.std()
        out[i] = 0.0 if std < 1e-12 else (window[i] - seen.mean()) / std
    return out


@given(st.integers(2, 80), st.integers(0, 2 ** 31 - 1), st.floats(-3e3, 3e3))
@settings(max_examples=60, deadline=None)
def test_incremental_causal_znorm_matches_naive_on_random_windows(length, seed, offset):
    # Well-conditioned random windows: noise of scale ~1, sizeable DC offset.
    rng = np.random.default_rng(seed)
    window = offset + rng.standard_normal(length)
    np.testing.assert_allclose(
        incremental_causal_znormalize(window), naive_causal_window(window), atol=1e-10
    )


@given(
    st.integers(2, 80),
    st.integers(0, 2 ** 31 - 1),
    st.floats(4.0, 10.0),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_incremental_causal_znorm_tracks_naive_at_extreme_offsets(
    length, seed, log_offset, negate
):
    # At extreme DC offsets the *naive reference itself* loses digits: its
    # prefix mean carries an absolute error of ~eps * offset, which the
    # division inflates by 1 / prefix_std.  The agreement bound must
    # therefore scale with the reference's conditioning *per element* -- a
    # short prefix whose samples happen to lie close together (small
    # prefix_std) is far worse conditioned than the window as a whole.  The
    # incremental implementation accumulates baseline-centred values and
    # stays at the input-representation limit; measured worst-case
    # differences are >10x inside this bound.
    offset = (-1.0 if negate else 1.0) * 10.0 ** log_offset
    rng = np.random.default_rng(seed)
    window = offset + rng.standard_normal(length)
    prefix_stds = np.asarray(
        [window[: i + 1].std() for i in range(window.shape[0])]
    )
    tolerance = 1e-10 + abs(offset) * 25 * np.finfo(float).eps / np.maximum(
        prefix_stds, 1e-12
    )
    difference = np.abs(
        incremental_causal_znormalize(window) - naive_causal_window(window)
    )
    assert np.all(difference <= tolerance), (
        f"max difference {difference.max():.3e} exceeds the conditioning "
        f"bound {tolerance[np.argmax(difference)]:.3e}"
    )


@given(
    st.integers(1, 30),
    st.integers(1, 30),
    st.floats(-100.0, 100.0),
    st.integers(0, 2 ** 31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_incremental_causal_znorm_constant_then_noise(n_constant, n_noise, level, seed):
    # A constant segment keeps std exactly 0 in both implementations (the
    # std < 1e-12 branch); the transition into noise must also agree.
    rng = np.random.default_rng(seed)
    window = np.concatenate(
        [np.full(n_constant, level), level + rng.standard_normal(n_noise)]
    )
    incremental = incremental_causal_znormalize(window)
    np.testing.assert_allclose(incremental, naive_causal_window(window), atol=1e-10)
    assert np.all(incremental[:n_constant] == 0.0)


@given(st.integers(2, 40), st.floats(-100.0, 100.0), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_incremental_causal_znorm_near_constant_stays_zero(length, level, seed):
    # Jitter at 1e-13 absolute keeps every prefix std safely below the 1e-12
    # threshold, so both implementations must emit exact zeros throughout.
    # (Jitter *at* the threshold is deliberately excluded: there the branch
    # itself is ill-conditioned in either implementation.)
    rng = np.random.default_rng(seed)
    window = level + 1e-13 * rng.standard_normal(length)
    incremental = incremental_causal_znormalize(window)
    np.testing.assert_array_equal(incremental, np.zeros(length))
    np.testing.assert_array_equal(naive_causal_window(window), np.zeros(length))


@given(st.integers(1, 8), st.integers(2, 40), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_running_stats_bank_slots_are_independent(n_slots, length, seed):
    # Feeding the same stream through k concurrent slots of one bank gives
    # bit-identical rows (the vectorised update has no cross-talk), and each
    # agrees with the one-shot whole-window normalisation to float round-off
    # (per-sample pushes and one block are different but equivalent
    # arithmetic paths).
    rng = np.random.default_rng(seed)
    window = rng.standard_normal(length) * 3.0 + 5.0
    bank = RunningCausalStats(n_slots)
    slots = np.arange(n_slots, dtype=np.intp)
    banked = np.stack([bank.push(slots, value) for value in window])
    for slot in range(1, n_slots):
        np.testing.assert_array_equal(banked[:, slot], banked[:, 0])
    np.testing.assert_allclose(
        banked[:, 0], incremental_causal_znormalize(window), atol=1e-12
    )


# ---------------------------------------------------------------------------
# Distance invariants
# ---------------------------------------------------------------------------


@given(st.integers(4, 40), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_euclidean_metric_axioms(length, seed):
    rng = np.random.default_rng(seed)
    a, b, c = (rng.standard_normal(length) for _ in range(3))
    assert euclidean_distance(a, a) < 1e-9
    assert euclidean_distance(a, b) == euclidean_distance(b, a)
    assert euclidean_distance(a, c) <= euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-9


@given(st.integers(4, 40), st.integers(0, 2 ** 31 - 1), st.floats(-10, 10), st.floats(0.1, 5))
@settings(max_examples=60, deadline=None)
def test_znormalized_distance_invariant_to_affine(length, seed, offset, scale):
    rng = np.random.default_rng(seed)
    a, b = rng.standard_normal(length), rng.standard_normal(length)
    base = znormalized_euclidean_distance(a, b)
    transformed = znormalized_euclidean_distance(scale * a + offset, b)
    assert abs(base - transformed) < 1e-6


@given(st.integers(5, 30), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_dtw_no_greater_than_euclidean(length, seed):
    rng = np.random.default_rng(seed)
    a, b = rng.standard_normal(length), rng.standard_normal(length)
    assert dtw_distance(a, b) <= euclidean_distance(a, b) + 1e-9


@given(st.integers(8, 30), st.integers(40, 120), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_distance_profile_matches_brute_force_at_random_position(query_length, series_length, seed):
    rng = np.random.default_rng(seed)
    query = rng.standard_normal(query_length)
    series = rng.standard_normal(series_length)
    profile = distance_profile(query, series)
    position = int(rng.integers(0, series_length - query_length + 1))
    expected = znormalized_euclidean_distance(query, series[position : position + query_length])
    assert abs(profile[position] - expected) < 1e-5


# ---------------------------------------------------------------------------
# UCR dataset invariants
# ---------------------------------------------------------------------------


@given(
    st.integers(2, 8),
    st.integers(4, 30),
    st.integers(0, 2 ** 31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_ucr_tsv_round_trip(n_exemplars, length, seed):
    rng = np.random.default_rng(seed)
    dataset = UCRDataset(
        name="prop",
        series=rng.standard_normal((n_exemplars, length)),
        labels=rng.integers(0, 3, size=n_exemplars),
    )
    loaded = UCRDataset.from_tsv_string(dataset.to_tsv_string())
    np.testing.assert_allclose(loaded.series, dataset.series, rtol=1e-7, atol=1e-9)
    assert [str(l) for l in loaded.labels] == [str(l) for l in dataset.labels]


@given(st.integers(2, 6), st.integers(6, 25), st.integers(1, 20), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_ucr_truncated_prefix_is_prefix(n_exemplars, length, prefix, seed):
    rng = np.random.default_rng(seed)
    prefix = min(prefix, length)
    dataset = UCRDataset(
        name="prop",
        series=rng.standard_normal((n_exemplars, length)),
        labels=np.arange(n_exemplars),
    )
    truncated = dataset.truncated(prefix)
    np.testing.assert_allclose(truncated.series, dataset.series[:, :prefix])


# ---------------------------------------------------------------------------
# Stream composition invariants
# ---------------------------------------------------------------------------


@given(
    st.integers(1, 6),
    st.integers(10, 40),
    st.integers(0, 50),
    st.integers(0, 2 ** 31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_stream_composition_invariants(n_events, exemplar_length, max_gap, seed):
    rng = np.random.default_rng(seed)
    exemplars = [rng.standard_normal(exemplar_length) for _ in range(n_events)]
    labels = [f"c{i % 2}" for i in range(n_events)]
    composer = StreamComposer(
        background=np.zeros(max(max_gap, 1) + 10),
        gap_range=(0, max_gap),
        level_match=False,
        seed=seed,
    )
    stream = composer.compose(exemplars, labels)

    # Every event interval lies inside the stream, events are ordered and
    # non-overlapping, and the values under each event are exactly the
    # exemplar that was embedded (level matching is off).
    assert stream.n_events == n_events
    previous_end = 0
    for event, exemplar in zip(stream.events, exemplars):
        assert event.start >= previous_end
        assert event.end <= len(stream)
        assert event.length == exemplar_length
        np.testing.assert_allclose(stream.extract(event), exemplar)
        previous_end = event.end


@given(st.integers(20, 200), st.integers(1, 5), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_background_fraction_bounds(length, n_events, seed):
    rng = np.random.default_rng(seed)
    events = []
    cursor = 0
    for _ in range(n_events):
        start = cursor + int(rng.integers(0, 5))
        end = start + int(rng.integers(1, 5))
        if end > length:
            break
        events.append(GroundTruthEvent(start=start, end=end, label="x"))
        cursor = end
    stream = ComposedStream(values=np.zeros(length), events=events)
    fraction = stream.background_fraction()
    assert 0.0 <= fraction <= 1.0
    covered = sum(e.length for e in events)
    assert abs(fraction - (length - covered) / length) < 1e-12
