"""Unit tests for repro.distance.dtw."""

import numpy as np
import pytest

from repro.distance.dtw import dtw_distance, dtw_path, znormalized_dtw_distance
from repro.distance.euclidean import euclidean_distance


class TestDTWDistance:
    def test_identical_series_distance_zero(self):
        series = np.array([1.0, 2.0, 3.0, 2.0])
        assert dtw_distance(series, series) == pytest.approx(0.0)

    def test_never_exceeds_euclidean_for_equal_lengths(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal(30), rng.standard_normal(30)
        assert dtw_distance(a, b) <= euclidean_distance(a, b) + 1e-9

    def test_zero_band_equals_euclidean(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal(20), rng.standard_normal(20)
        assert dtw_distance(a, b, window=0) == pytest.approx(euclidean_distance(a, b))

    def test_handles_time_shift_better_than_euclidean(self):
        t = np.linspace(0, 2 * np.pi, 60)
        a = np.sin(t)
        b = np.sin(t + 0.4)
        assert dtw_distance(a, b) < euclidean_distance(a, b)

    def test_different_lengths_allowed(self):
        a = np.sin(np.linspace(0, 2 * np.pi, 40))
        b = np.sin(np.linspace(0, 2 * np.pi, 55))
        assert dtw_distance(a, b) < 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal(15), rng.standard_normal(18)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_fractional_window(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(25), rng.standard_normal(25)
        narrow = dtw_distance(a, b, window=0.05)
        wide = dtw_distance(a, b, window=1.0)
        assert wide <= narrow + 1e-9

    def test_rejects_bad_fractional_window(self):
        with pytest.raises(ValueError):
            dtw_distance(np.arange(5.0), np.arange(5.0), window=1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dtw_distance(np.array([]), np.arange(3.0))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros((2, 3)), np.zeros(3))


class TestZnormalizedDTW:
    def test_offset_invariance(self):
        rng = np.random.default_rng(4)
        a, b = rng.standard_normal(25), rng.standard_normal(25)
        assert znormalized_dtw_distance(a + 7.0, b) == pytest.approx(
            znormalized_dtw_distance(a, b), rel=1e-9
        )


class TestDTWPath:
    def test_path_endpoints(self):
        rng = np.random.default_rng(5)
        a, b = rng.standard_normal(12), rng.standard_normal(15)
        path = dtw_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (len(a) - 1, len(b) - 1)

    def test_path_monotonicity(self):
        rng = np.random.default_rng(6)
        a, b = rng.standard_normal(10), rng.standard_normal(11)
        path = dtw_path(a, b)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert 0 <= i2 - i1 <= 1
            assert 0 <= j2 - j1 <= 1
            assert (i2 - i1) + (j2 - j1) >= 1

    def test_identical_series_diagonal_path(self):
        series = np.arange(8.0)
        path = dtw_path(series, series)
        assert path == [(i, i) for i in range(8)]

    def test_tied_cost_prefers_diagonal_move(self):
        # All-zero series: every alignment has cost 0, so the traceback's
        # move preference alone decides the path.  The pinned convention is
        # diagonal-first: from (1, 2) the path steps to (0, 1) -- not to
        # (0, 2) or (1, 1) -- and then left to (0, 0).
        path = dtw_path(np.zeros(2), np.zeros(3))
        assert path == [(0, 0), (0, 1), (1, 2)]

    def test_tied_cost_square_grid_stays_diagonal(self):
        path = dtw_path(np.zeros(3), np.zeros(3))
        assert path == [(i, i) for i in range(3)]


class TestBandResolution:
    """The int-vs-fraction window contract of ``_resolve_band``."""

    def test_bool_window_rejected(self):
        a = np.arange(10.0)
        for bad in (True, False, np.bool_(True)):
            with pytest.raises(TypeError):
                dtw_distance(a, a, window=bad)

    def test_numpy_integer_window_is_absolute(self):
        rng = np.random.default_rng(7)
        a, b = rng.standard_normal(20), rng.standard_normal(20)
        assert dtw_distance(a, b, window=np.int64(3)) == dtw_distance(a, b, window=3)

    def test_numpy_float_window_is_fractional(self):
        rng = np.random.default_rng(8)
        a, b = rng.standard_normal(20), rng.standard_normal(20)
        for spec in (np.float64(0.25), np.float32(0.25)):
            assert dtw_distance(a, b, window=spec) == dtw_distance(a, b, window=0.25)

    def test_float_one_is_full_band_not_band_one(self):
        # The footgun the docstring warns about: window=1 is a band of one
        # sample, window=1.0 is the full (unconstrained) band.
        rng = np.random.default_rng(9)
        a, b = rng.standard_normal(20), rng.standard_normal(20)
        assert dtw_distance(a, b, window=1.0) == dtw_distance(a, b, window=None)
        assert dtw_distance(a, b, window=1) >= dtw_distance(a, b, window=1.0)

    def test_string_window_rejected(self):
        with pytest.raises(TypeError):
            dtw_distance(np.arange(5.0), np.arange(5.0), window="wide")

    def test_negative_int_window_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance(np.arange(5.0), np.arange(5.0), window=-1)
