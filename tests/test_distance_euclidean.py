"""Unit tests for repro.distance.euclidean."""

import numpy as np
import pytest

from repro.distance.euclidean import (
    euclidean_distance,
    pairwise_euclidean,
    squared_euclidean_distance,
    znormalized_euclidean_distance,
)
from repro.distance.znorm import znormalize


class TestEuclideanDistance:
    def test_identical_series_distance_zero(self):
        series = np.array([1.0, 2.0, 3.0])
        assert euclidean_distance(series, series) == 0.0

    def test_known_value(self):
        a = np.array([0.0, 0.0])
        b = np.array([3.0, 4.0])
        assert euclidean_distance(a, b) == pytest.approx(5.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal(20), rng.standard_normal(20)
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))

    def test_triangle_inequality(self):
        rng = np.random.default_rng(1)
        a, b, c = (rng.standard_normal(15) for _ in range(3))
        assert euclidean_distance(a, c) <= euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-12

    def test_squared_is_square(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal(10), rng.standard_normal(10)
        assert squared_euclidean_distance(a, b) == pytest.approx(euclidean_distance(a, b) ** 2)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.arange(3.0), np.arange(4.0))

    def test_2d_pair_is_channel_summed(self):
        rng = np.random.default_rng(5)
        a, b = rng.standard_normal((12, 3)), rng.standard_normal((12, 3))
        per_channel = sum(
            squared_euclidean_distance(a[:, c], b[:, c]) for c in range(3)
        )
        assert squared_euclidean_distance(a, b) == pytest.approx(per_channel, abs=1e-10)

    def test_rejects_mismatched_ranks(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.zeros((2, 3)), np.zeros(6))

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.zeros((4, 2)), np.zeros((4, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.array([]), np.array([]))


class TestZnormalizedEuclidean:
    def test_offset_invariance(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(30), rng.standard_normal(30)
        base = znormalized_euclidean_distance(a, b)
        shifted = znormalized_euclidean_distance(a + 5.0, b - 2.0)
        assert shifted == pytest.approx(base, rel=1e-9)

    def test_scale_invariance(self):
        rng = np.random.default_rng(4)
        a, b = rng.standard_normal(30), rng.standard_normal(30)
        base = znormalized_euclidean_distance(a, b)
        scaled = znormalized_euclidean_distance(3.0 * a, 0.5 * b)
        assert scaled == pytest.approx(base, rel=1e-9)

    def test_equals_euclidean_on_prenormalised_data(self):
        rng = np.random.default_rng(5)
        a = znormalize(rng.standard_normal(25))
        b = znormalize(rng.standard_normal(25))
        assert znormalized_euclidean_distance(a, b) == pytest.approx(euclidean_distance(a, b))

    def test_upper_bound(self):
        # For z-normalised series of length m the distance is at most 2*sqrt(m).
        rng = np.random.default_rng(6)
        m = 40
        a, b = rng.standard_normal(m), rng.standard_normal(m)
        assert znormalized_euclidean_distance(a, b) <= 2.0 * np.sqrt(m) + 1e-9


class TestPairwiseEuclidean:
    def test_matches_pointwise_computation(self):
        rng = np.random.default_rng(7)
        rows = rng.standard_normal((5, 12))
        others = rng.standard_normal((4, 12))
        matrix = pairwise_euclidean(rows, others)
        for i in range(5):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(euclidean_distance(rows[i], others[j]), abs=1e-9)

    def test_self_distances_zero_diagonal(self):
        rng = np.random.default_rng(8)
        rows = rng.standard_normal((6, 10))
        matrix = pairwise_euclidean(rows)
        np.testing.assert_allclose(np.diag(matrix), np.zeros(6), atol=1e-6)

    def test_shape(self):
        matrix = pairwise_euclidean(np.zeros((3, 5)), np.zeros((7, 5)))
        assert matrix.shape == (3, 7)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pairwise_euclidean(np.zeros((3, 5)), np.zeros((2, 4)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pairwise_euclidean(np.zeros(5))
