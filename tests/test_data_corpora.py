"""Unit tests for the EOG / EPG / random-walk corpus generators."""

import numpy as np
import pytest

from repro.data.eog import generate_eog
from repro.data.epg import generate_epg
from repro.data.random_walk import random_walk_background, smoothed_random_walk


class TestEOG:
    def test_length_and_finiteness(self):
        signal = generate_eog(10_000, seed=1)
        assert signal.shape == (10_000,)
        assert np.all(np.isfinite(signal))

    def test_deterministic_given_seed(self):
        np.testing.assert_allclose(generate_eog(5_000, seed=2), generate_eog(5_000, seed=2))

    def test_contains_fixations_and_saccades(self):
        # Fixations mean many tiny steps; saccades mean a few large ones.
        signal = generate_eog(20_000, seed=3)
        steps = np.abs(np.diff(signal))
        assert np.quantile(steps, 0.5) < 0.05
        assert steps.max() > 0.2

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            generate_eog(10)

    def test_rejects_bad_sampling_rate(self):
        with pytest.raises(ValueError):
            generate_eog(1_000, sampling_rate=1)


class TestEPG:
    def test_length_and_finiteness(self):
        signal = generate_epg(10_000, seed=1)
        assert signal.shape == (10_000,)
        assert np.all(np.isfinite(signal))

    def test_deterministic_given_seed(self):
        np.testing.assert_allclose(generate_epg(5_000, seed=2), generate_epg(5_000, seed=2))

    def test_has_oscillatory_probing_segments(self):
        signal = generate_epg(50_000, seed=3)
        # Probing waveforms put appreciable energy above the baseline noise.
        assert np.std(signal) > 0.1

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            generate_epg(10)


class TestRandomWalk:
    def test_length(self):
        assert smoothed_random_walk(4_096, seed=1).shape == (4_096,)

    def test_deterministic_given_int_seed(self):
        np.testing.assert_allclose(
            smoothed_random_walk(2_000, seed=5), smoothed_random_walk(2_000, seed=5)
        )

    def test_accepts_generator_seed(self):
        rng = np.random.default_rng(9)
        walk = smoothed_random_walk(1_000, seed=rng)
        assert walk.shape == (1_000,)

    def test_smoothing_reduces_roughness(self):
        rough = smoothed_random_walk(10_000, smoothing=1, seed=3)
        smooth = smoothed_random_walk(10_000, smoothing=64, seed=3)
        assert np.std(np.diff(smooth)) < np.std(np.diff(rough))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            smoothed_random_walk(1)
        with pytest.raises(ValueError):
            smoothed_random_walk(100, smoothing=0)
        with pytest.raises(ValueError):
            smoothed_random_walk(100, step_scale=0.0)

    def test_background_source_callable(self):
        source = random_walk_background(smoothing=8)
        rng = np.random.default_rng(0)
        chunk = source(500, rng)
        assert chunk.shape == (500,)
        assert source(0, rng).shape == (0,)
