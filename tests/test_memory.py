"""Tests for the unified memory budget (:mod:`repro.memory`).

Covers the resolution precedence (per-call > process-wide > environment >
default), the deprecation shims on the legacy per-call byte knobs, and --
the load-bearing property -- that chunking against *any* budget leaves every
budgeted kernel's output bit-identical to the unchunked computation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import memory
from repro.distance.backends import pruned_dtw_nearest_neighbors
from repro.distance.engine import (
    batch_prefix_distances,
    dtw_pairwise_distances,
    ragged_prefix_distances,
)
from repro.memory import (
    DEFAULT_MAX_BLOCK_BYTES,
    MEMORY_BUDGET_ENV_VAR,
    get_memory_budget,
    memory_budget,
    resolve_block_bytes,
    set_memory_budget,
)


@pytest.fixture(autouse=True)
def _clean_budget(monkeypatch):
    """Every test starts from the unconfigured state."""
    monkeypatch.delenv(MEMORY_BUDGET_ENV_VAR, raising=False)
    set_memory_budget(None)
    yield
    set_memory_budget(None)


class TestPrecedence:
    def test_default_is_the_historical_64_mib(self):
        assert DEFAULT_MAX_BLOCK_BYTES == 64 * 2**20
        assert get_memory_budget() == DEFAULT_MAX_BLOCK_BYTES

    def test_environment_variable_overrides_the_default(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "12345")
        assert get_memory_budget() == 12345

    def test_set_memory_budget_overrides_the_environment(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "12345")
        set_memory_budget(999)
        assert get_memory_budget() == 999

    def test_per_call_overrides_everything(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "12345")
        set_memory_budget(999)
        assert resolve_block_bytes(7) == 7

    def test_clearing_restores_environment_resolution(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "4096")
        set_memory_budget(1)
        set_memory_budget(None)
        assert get_memory_budget() == 4096

    def test_environment_is_read_at_call_time(self, monkeypatch):
        assert get_memory_budget() == DEFAULT_MAX_BLOCK_BYTES
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "2048")
        assert get_memory_budget() == 2048


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, -(2**30)])
    def test_non_positive_budget_raises(self, bad):
        with pytest.raises(ValueError, match="positive"):
            set_memory_budget(bad)

    def test_non_integer_budget_raises(self):
        with pytest.raises(ValueError):
            set_memory_budget("lots")  # type: ignore[arg-type]

    def test_malformed_environment_value_raises_not_ignored(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "64MB")
        with pytest.raises(ValueError, match=MEMORY_BUDGET_ENV_VAR):
            get_memory_budget()

    def test_non_positive_per_call_raises(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_block_bytes(0)


class TestContextManager:
    def test_budget_applies_inside_and_restores_after(self):
        with memory_budget(2**20) as active:
            assert active == 2**20
            assert get_memory_budget() == 2**20
        assert get_memory_budget() == DEFAULT_MAX_BLOCK_BYTES

    def test_nested_budgets_restore_outer(self):
        with memory_budget(100):
            with memory_budget(200):
                assert get_memory_budget() == 200
            assert get_memory_budget() == 100

    def test_restores_even_on_exception(self):
        set_memory_budget(50)
        with pytest.raises(RuntimeError):
            with memory_budget(60):
                raise RuntimeError("boom")
        assert get_memory_budget() == 50


class TestDeprecationShims:
    def test_explicit_knob_warns_but_is_honoured(self):
        queries = np.random.default_rng(0).normal(size=(4, 16))
        train = np.random.default_rng(1).normal(size=(3, 16))
        with pytest.warns(DeprecationWarning, match="max_block_bytes"):
            chunked = batch_prefix_distances(queries, train, [16], max_block_bytes=64)
        reference = batch_prefix_distances(queries, train, [16])
        np.testing.assert_array_equal(chunked, reference)

    def test_default_call_does_not_warn(self, recwarn):
        queries = np.random.default_rng(0).normal(size=(4, 16))
        train = np.random.default_rng(1).normal(size=(3, 16))
        batch_prefix_distances(queries, train, [16])
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_classifier_knob_warns_at_construction(self):
        from repro.distance.neighbors import KNeighborsTimeSeriesClassifier

        with pytest.warns(DeprecationWarning, match="max_prefix_sweep_bytes"):
            KNeighborsTimeSeriesClassifier(max_prefix_sweep_bytes=1024)


class TestChunkingEquivalence:
    """A tight budget forces many chunks; output must stay bit-identical."""

    rng = np.random.default_rng(42)
    queries = rng.normal(size=(13, 40))
    train = rng.normal(size=(7, 40))

    def test_batch_prefix_distances(self):
        reference = batch_prefix_distances(self.queries, self.train, [10, 25, 40])
        with memory_budget(1024):  # a few rows per chunk
            chunked = batch_prefix_distances(self.queries, self.train, [10, 25, 40])
        np.testing.assert_array_equal(chunked, reference)

    def test_ragged_prefix_distances(self):
        lengths = [5 + (i % 30) for i in range(13)]
        reference = ragged_prefix_distances(self.queries, self.train, lengths)
        with memory_budget(1024):
            chunked = ragged_prefix_distances(self.queries, self.train, lengths)
        np.testing.assert_array_equal(chunked, reference)

    def test_dtw_pairwise_distances(self):
        reference = dtw_pairwise_distances(self.queries, self.train, window=5)
        with memory_budget(1024):
            chunked = dtw_pairwise_distances(self.queries, self.train, window=5)
        np.testing.assert_array_equal(chunked, reference)

    def test_pruned_backend_lb_stage(self):
        ref_idx, ref_dist = pruned_dtw_nearest_neighbors(
            self.queries, self.train, window=5
        )
        with memory_budget(1024):
            idx, dist = pruned_dtw_nearest_neighbors(self.queries, self.train, window=5)
        np.testing.assert_array_equal(idx, ref_idx)
        np.testing.assert_array_equal(dist, ref_dist)

    def test_environment_variable_reaches_the_kernels(self, monkeypatch):
        reference = batch_prefix_distances(self.queries, self.train, [40])
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "512")
        chunked = batch_prefix_distances(self.queries, self.train, [40])
        np.testing.assert_array_equal(chunked, reference)

    def test_chunked_finiteness_validation_matches(self):
        from repro.data.ucr_format import UCRDataset

        series = self.rng.normal(size=(9, 64))
        with memory_budget(256):  # forces multi-chunk validation
            dataset = UCRDataset(name="x", series=series, labels=np.zeros(9))
        np.testing.assert_array_equal(dataset.series, series)
        bad = series.copy()
        bad[7, 60] = np.nan
        with memory_budget(256), pytest.raises(ValueError, match="non-finite"):
            UCRDataset(name="x", series=bad, labels=np.zeros(9))

    def test_module_state_is_inspectable(self):
        # Regression guard: the module-level budget must live in repro.memory
        # (not be shadowed per-import elsewhere).
        set_memory_budget(4321)
        assert memory._BUDGET == 4321
