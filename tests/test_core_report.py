"""Unit tests for the combined meaningfulness report."""

import pytest

from repro.core.criteria import CostBenefitCriterion, PriorProbabilityCriterion
from repro.core.inclusion_analysis import analyze_lexical_inclusions
from repro.core.prefix_accuracy import PrefixAccuracyCurve
from repro.core.prefix_analysis import analyze_lexical_prefixes
from repro.core.report import assess_meaningfulness
from repro.data.words import LEXICON
from repro.streaming.metrics import StreamingEvaluation


def _evaluation(tp: int, fp: int, fn: int) -> StreamingEvaluation:
    return StreamingEvaluation(
        n_alarms=tp + fp,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        precision=tp / (tp + fp) if tp + fp else 0.0,
        recall=tp / (tp + fn) if tp + fn else 0.0,
        false_positives_per_true_positive=fp / tp if tp else (float("inf") if fp else 0.0),
        false_alarms_per_1000_samples=0.0,
        mean_fraction_of_event_seen=None,
        stream_length=100_000,
    )


class TestAssessMeaningfulness:
    def test_word_domain_fails_confusability(self):
        report = assess_meaningfulness(
            domain="spoken words (cat/dog)",
            prefix_result=analyze_lexical_prefixes(["cat", "dog"], LEXICON),
            inclusion_result=analyze_lexical_inclusions(["cat", "dog"], LEXICON),
        )
        assert not report.meaningful
        confusability = report.criterion("confusability")
        assert not confusability.passed
        assert report.failed_criteria()[0].name == "confusability"

    def test_clean_domain_passes(self):
        report = assess_meaningfulness(
            domain="clean domain",
            cost_criterion=CostBenefitCriterion().evaluate(_evaluation(tp=20, fp=5, fn=0)),
            prior_criterion=PriorProbabilityCriterion().evaluate(
                event_prior=0.1, per_window_false_positive_rate=0.001
            ),
            prefix_result=analyze_lexical_prefixes(["dustbathing"], ["dustbathing", "walking"]),
        )
        assert report.meaningful
        assert report.failed_criteria() == []

    def test_added_value_criterion_with_claimed_earliness(self):
        curve = PrefixAccuracyCurve(
            lengths=(30, 60, 150),
            accuracies=(0.93, 0.95, 0.93),
            series_length=150,
            renormalized=True,
        )
        better = assess_meaningfulness(
            domain="x", prefix_curve=curve, claimed_earliness=0.1
        )
        worse = assess_meaningfulness(
            domain="x", prefix_curve=curve, claimed_earliness=0.5
        )
        assert better.criterion("added_value").passed
        assert not worse.criterion("added_value").passed

    def test_requires_some_evidence(self):
        with pytest.raises(ValueError):
            assess_meaningfulness(domain="empty")

    def test_unknown_criterion_lookup_raises(self):
        report = assess_meaningfulness(
            domain="x",
            prefix_result=analyze_lexical_prefixes(["cat"], LEXICON),
        )
        with pytest.raises(KeyError):
            report.criterion("does_not_exist")

    def test_to_text_mentions_verdict_and_criteria(self):
        report = assess_meaningfulness(
            domain="spoken words",
            prefix_result=analyze_lexical_prefixes(["cat", "dog"], LEXICON),
        )
        text = report.to_text()
        assert "spoken words" in text
        assert "confusability" in text
        assert "NOT MEANINGFUL" in text
