"""Unit tests for the prepare-stage cache: keys, hits, misses, invalidation."""

from __future__ import annotations

import pytest

import repro.runtime.cache as cache_module
from repro.runtime.cache import PrepareCache, UncacheableParams


@pytest.fixture
def cache(tmp_path):
    return PrepareCache(tmp_path / "cache")


class TestKeys:
    def test_key_is_deterministic(self, cache):
        params = {"n_per_class": 10, "seed": 3}
        assert cache.key("figure1", params) == cache.key("figure1", dict(params))

    def test_key_ignores_param_order(self, cache):
        assert cache.key("figure1", {"a": 1, "b": 2}) == cache.key(
            "figure1", {"b": 2, "a": 1}
        )

    def test_key_changes_with_params(self, cache):
        base = cache.key("figure1", {"seed": 3})
        assert cache.key("figure1", {"seed": 4}) != base

    def test_key_changes_with_experiment(self, cache):
        assert cache.key("figure1", {"seed": 3}) != cache.key("figure2", {"seed": 3})

    def test_tuples_and_lists_canonicalise_identically(self, cache):
        # A fast override may say (800, 2000) where a CLI round-trip says
        # [800, 2000]; both describe the same prepared data.
        assert cache.key("appendix_b", {"gap_range": (800, 2000)}) == cache.key(
            "appendix_b", {"gap_range": [800, 2000]}
        )

    def test_numpy_scalars_canonicalise_like_python_numbers(self, cache):
        numpy = pytest.importorskip("numpy")
        assert cache.key("figure1", {"seed": numpy.int64(3)}) == cache.key(
            "figure1", {"seed": 3}
        )

    def test_object_valued_params_are_uncacheable(self, cache):
        class Opaque:
            pass

        with pytest.raises(UncacheableParams):
            cache.key("table1", {"algorithms": Opaque()})

    def test_multi_element_numpy_arrays_are_uncacheable_not_fatal(self, cache):
        # ndarray.item() raises ValueError on >1 element; that must surface
        # as UncacheableParams (cache bypass), never as a bare crash.
        numpy = pytest.importorskip("numpy")
        with pytest.raises(UncacheableParams):
            cache.key("figure6", {"offset_range": numpy.array([-1.0, 1.0])})

    def test_schema_version_invalidates_keys(self, cache, monkeypatch):
        before = cache.key("figure1", {"seed": 3})
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION", 999)
        assert cache.key("figure1", {"seed": 3}) != before


class TestStore:
    def test_miss_then_hit(self, cache):
        key = cache.key("figure1", {"seed": 3})
        assert cache.is_miss(cache.load("figure1", key))
        assert cache.store("figure1", key, {"payload": [1, 2, 3]})
        value = cache.load("figure1", key)
        assert not cache.is_miss(value)
        assert value == {"payload": [1, 2, 3]}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_none_is_a_legitimate_cached_value(self, cache):
        key = cache.key("figure1", {"seed": 3})
        cache.store("figure1", key, None)
        value = cache.load("figure1", key)
        assert value is None
        assert not cache.is_miss(value)

    def test_numpy_arrays_roundtrip_exactly(self, cache):
        numpy = pytest.importorskip("numpy")
        rng = numpy.random.default_rng(0)
        payload = rng.normal(size=(7, 11))
        key = cache.key("figure5", {"seed": 5})
        cache.store("figure5", key, payload)
        numpy.testing.assert_array_equal(cache.load("figure5", key), payload)

    def test_unpicklable_value_is_skipped_not_fatal(self, cache):
        key = cache.key("figure1", {"seed": 3})
        assert not cache.store("figure1", key, lambda: None)
        assert cache.is_miss(cache.load("figure1", key))
        assert cache.stats.skips == 1
        # No half-written entry may remain behind.
        assert cache.entries() == []

    def test_corrupt_entry_reads_as_miss(self, cache):
        key = cache.key("figure1", {"seed": 3})
        cache.store("figure1", key, [1, 2, 3])
        cache.path_for("figure1", key).write_bytes(b"not a pickle")
        assert cache.is_miss(cache.load("figure1", key))

    def test_stale_entry_for_a_vanished_class_reads_as_miss(self, cache, monkeypatch):
        # Simulate an entry pickled against a class whose module has since
        # been renamed away: unpickling raises ModuleNotFoundError, which
        # must count as a miss, not crash every subsequent run.
        import sys
        import types

        module = types.ModuleType("_vanishing_module")

        class Payload:
            pass

        Payload.__module__ = module.__name__
        Payload.__qualname__ = "Payload"
        module.Payload = Payload
        monkeypatch.setitem(sys.modules, module.__name__, module)
        key = cache.key("figure1", {"seed": 3})
        cache.store("figure1", key, Payload())
        del sys.modules[module.__name__]
        assert cache.is_miss(cache.load("figure1", key))

    def test_clear_removes_every_entry(self, cache):
        for seed in range(3):
            key = cache.key("figure1", {"seed": seed})
            cache.store("figure1", key, seed)
        assert len(cache.entries()) == 3
        assert cache.clear() == 3
        assert cache.entries() == []

    def test_missing_root_reads_as_miss(self, tmp_path):
        cache = PrepareCache(tmp_path / "never-created")
        assert cache.is_miss(cache.load("figure1", "0" * 64))
        assert cache.entries() == []
