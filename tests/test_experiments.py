"""Experiment-level tests: each table/figure regenerates with the right shape.

These run the reduced-scale ("fast") versions of the experiments and assert
the *qualitative* claims of the paper -- who wins, what collapses, what stays
flat -- rather than absolute numbers.
"""

import pytest

from repro.experiments import available_experiments, run_experiment
from repro.experiments import figure2, figure3, figure5, figure6, figure7, figure8, figure9
from repro.experiments import appendix_b, figure1, table1
from repro.experiments.registry import EXPERIMENTS, FAST_OVERRIDES


class TestRegistry:
    def test_every_figure_and_table_has_an_experiment(self):
        expected = {
            "figure1", "figure2", "figure3", "figure5", "figure6",
            "figure7", "figure8", "figure9", "table1", "appendix_b",
            "section5_padding", "multivariate",
        }
        assert expected == set(available_experiments())

    def test_fast_overrides_cover_all_experiments(self):
        assert set(FAST_OVERRIDES) == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("figure4")

    def test_run_experiment_forwards_overrides(self):
        result = run_experiment("figure1", n_per_class=5)
        assert result.class_counts == {"cat": 5, "dog": 5}


class TestFigure1:
    def test_ucr_format_properties(self):
        result = figure1.run(n_per_class=8)
        assert result.series_length == 150
        assert result.class_counts == {"cat": 8, "dog": 8}
        # "carefully aligned": within-class traces are strongly correlated.
        assert result.mean_within_class_correlation > 0.7
        # And in this format the problem is easy.
        assert result.holdout_accuracy >= 0.85
        assert "Figure 1" in result.to_text()


class TestFigure2:
    def test_sentence_produces_false_positives_in_both_classes(self):
        result = figure2.run(n_per_class=10)
        # The paper's six prefix confounders all fire, three per class.
        assert result.confounder_false_positives >= 5
        assert result.false_positives_total >= result.confounder_false_positives
        assert set(result.false_positives_by_class) == {"cat", "dog"}
        assert "false positives" in result.to_text()

    def test_triggers_happen_early(self):
        result = figure2.run(n_per_class=10)
        confounder_outcomes = [o for o in result.outcomes if o.is_prefix_confounder and o.triggered]
        assert confounder_outcomes
        for outcome in confounder_outcomes:
            assert outcome.trigger_length < 150


class TestFigure3:
    def test_both_models_trigger_early_and_correctly(self):
        result = figure3.run(n_train_per_class=20, n_test_per_class=25)
        assert len(result.traces) == 2
        for trace in result.traces:
            assert trace.correct
            assert trace.trigger_length < trace.series_length
            assert trace.fraction_seen < 0.8
        teaser = result.trace_for("TEASER")
        assert teaser.probability_trajectory  # the plotted curve exists


class TestFigure5:
    def test_homophones_found_in_nongesture_corpora(self):
        result = figure5.run(
            eog_points=60_000, random_walk_points=2 ** 17, epg_points=60_000, n_queries=2
        )
        assert result.analysis.fraction_with_closer_homophone >= 0.5
        assert len(result.analysis.queries) == 2
        text = result.to_text()
        assert "random walk" in text


class TestFigure6:
    def test_only_the_raw_prefix_condition_collapses(self):
        result = figure6.run(n_train_per_class=20, n_test_per_class=30)
        # Full-length re-normalising 1-NN: identical on both test sets.
        assert result.full_length_clean == pytest.approx(result.full_length_denormalized)
        # Honest prefix re-normalisation: also identical.
        assert result.prefix_renormalized_clean == pytest.approx(
            result.prefix_renormalized_denormalized
        )
        # Raw prefix values: the perturbation costs accuracy.
        assert result.prefix_raw_denormalized < result.prefix_raw_clean


class TestFigure7:
    def test_acquisition_artefacts_dominate_physiology(self):
        result = figure7.run(duration_seconds=12.0)
        assert result.n_beats >= 8
        assert result.lead1_mean_range > 3 * result.clean_mean_range
        assert result.lead2_std_range > 1.5 * result.clean_std_range


class TestFigure8:
    def test_truncated_template_statistically_equivalent(self):
        result = figure8.run(n_points=150_000)
        assert result.n_dustbathing_bouts >= 5
        assert result.full.recall >= 0.9
        assert result.truncated.recall >= 0.9
        assert result.full.precision >= 0.9
        assert not result.significance.significant
        assert "NOT significantly different" in result.to_text()


class TestFigure9:
    def test_prefix_curve_shape(self):
        result = figure9.run(n_train_per_class=20, n_test_per_class=30, step=5)
        # A prefix of roughly a third of the exemplar matches full accuracy...
        assert result.fraction_needed <= 0.5
        # ...and the best prefix is not the full exemplar.
        assert result.best_length < 150
        assert result.best_error <= result.full_length_error + 1e-9
        # Very short prefixes are near chance (error >= 0.3).
        assert result.curve.error_rates[0] >= 0.25


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(n_train_per_class=15, n_test_per_class=20, fast=True)

    def test_all_six_algorithms_present(self, result):
        names = [audit.algorithm for audit in result.audits]
        assert len(names) == 6
        assert any("ECTS" in n for n in names)
        assert any("EDSC-CHE" in n for n in names)
        assert any("EDSC-KDE" in n for n in names)
        assert any("Rel. Class." in n for n in names)

    def test_every_algorithm_loses_accuracy_when_denormalized(self, result):
        for audit in result.audits:
            assert audit.denormalized.accuracy < audit.normalized.accuracy, audit.algorithm

    def test_algorithms_work_on_normalized_data(self, result):
        for audit in result.audits:
            assert audit.normalized.accuracy >= 0.7, audit.algorithm

    def test_control_is_unaffected(self, result):
        assert result.control_normalized == pytest.approx(result.control_denormalized)

    def test_rows_and_text(self, result):
        rows = result.rows()
        assert len(rows) == 6
        text = result.to_text()
        assert "Normalized" in text and "DeNormalized" in text


class TestAppendixB:
    def test_streaming_deployment_is_dominated_by_false_positives(self):
        result = appendix_b.run(n_events=8, gap_range=(800, 2000), stride=20)
        evaluation = result.evaluation
        assert evaluation.false_positives > evaluation.true_positives
        assert not result.cost_criterion.passed
        assert "loses money" in result.to_text()

    def test_prepare_can_skip_the_default_fit_for_custom_classifiers(self):
        # run(classifier=...) avoids the TEASER fit entirely; compute then
        # insists a classifier is supplied.
        prepared = appendix_b.prepare(
            n_events=2, gap_range=(200, 400), seed=1, fit_default=False
        )
        assert prepared.default_classifier is None
        with pytest.raises(ValueError, match="no classifier supplied"):
            appendix_b.compute(prepared, n_events=2)
