"""Unit tests for the TEASER early classifier."""

import numpy as np
import pytest

from repro.classifiers.teaser import TEASERClassifier, _OneClassGaussian


class TestOneClassGaussian:
    def test_accepts_inliers_rejects_outliers(self):
        rng = np.random.default_rng(0)
        rows = rng.standard_normal((200, 3)) * 0.1 + np.array([1.0, 0.0, 0.5])
        model = _OneClassGaussian.fit(rows, quantile=0.95)
        assert model.accepts(np.array([1.0, 0.0, 0.5]))
        assert not model.accepts(np.array([10.0, 10.0, 10.0]))

    def test_threshold_positive(self):
        rng = np.random.default_rng(1)
        rows = rng.standard_normal((50, 2))
        model = _OneClassGaussian.fit(rows, quantile=0.9)
        assert model.threshold > 0


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TEASERClassifier(n_checkpoints=1)
        with pytest.raises(ValueError):
            TEASERClassifier(consecutive_required=0)
        with pytest.raises(ValueError):
            TEASERClassifier(candidate_v=())
        with pytest.raises(ValueError):
            TEASERClassifier(master_quantile=0.2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TEASERClassifier().predict_early(np.zeros(10))


class TestTraining:
    def test_consecutive_requirement_selected_from_candidates(self, tiny_two_class):
        series, labels = tiny_two_class
        model = TEASERClassifier(n_checkpoints=8, candidate_v=(1, 2, 3)).fit(series, labels)
        assert model.consecutive_required_ in (1, 2, 3)

    def test_explicit_consecutive_requirement_respected(self, tiny_two_class):
        series, labels = tiny_two_class
        model = TEASERClassifier(n_checkpoints=8, consecutive_required=2).fit(series, labels)
        assert model.consecutive_required_ == 2

    def test_masters_fitted_per_checkpoint(self, tiny_two_class):
        series, labels = tiny_two_class
        model = TEASERClassifier(n_checkpoints=8, consecutive_required=2).fit(series, labels)
        assert set(model._masters) == set(model.checkpoints())


class TestPrediction:
    def test_separable_problem_accuracy_and_earliness(self, tiny_two_class):
        series, labels = tiny_two_class
        model = TEASERClassifier(n_checkpoints=8).fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) >= 0.9
        assert model.average_earliness(series[1::2]) < 1.0

    def test_larger_v_never_triggers_earlier(self, tiny_two_class):
        series, labels = tiny_two_class
        eager = TEASERClassifier(n_checkpoints=8, consecutive_required=1).fit(series[::2], labels[::2])
        patient = TEASERClassifier(n_checkpoints=8, consecutive_required=4).fit(series[::2], labels[::2])
        assert patient.average_earliness(series[1::2]) >= eager.average_earliness(series[1::2]) - 1e-9

    def test_history_contains_partial_predictions(self, tiny_two_class):
        series, labels = tiny_two_class
        model = TEASERClassifier(n_checkpoints=8, consecutive_required=2).fit(series, labels)
        outcome = model.predict_early(series[0], keep_history=True)
        assert outcome.history
        assert all(p.prefix_length <= series.shape[1] for p in outcome.history)

    def test_gunpoint_behaviour(self, gunpoint_medium):
        train, test = gunpoint_medium
        model = TEASERClassifier().fit(train.series, train.labels)
        accuracy = model.score(test.series[:20], test.labels[:20])
        earliness = model.average_earliness(test.series[:20])
        # TEASER should be clearly better than chance and commit before the end.
        assert accuracy >= 0.7
        assert earliness < 0.95
