"""Batch-vs-reference equivalence for the vectorised prediction engine.

``predict_early_batch`` answers a whole test set from batched matrix
kernels; ``predict_early`` row by row is the reference implementation.  The
two must agree -- outcome by outcome and metric by metric -- for every
classifier with a batched override, across z-normalisation modes, or the
batched fast path has silently drifted (a tie-break or voting regression).
This suite is the drift gate the CI workflow runs explicitly.

All datasets here are fixed-seed, so the assertions are deterministic.  One
caveat for future failures: the probability-based classifiers' batched path
computes distances with a (n x m) GEMM where the per-row path uses a
(1 x m) GEMV, which agree only to ~1e-15; a slave confidence landing within
that sliver of a trigger threshold would legitimately shift one checkpoint.
If this gate ever trips with a one-checkpoint trigger_length difference and
a near-threshold confidence, suspect that razor's edge before suspecting
real drift (ECTS is immune: its kernel is bit-identical to the reference).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers.base import BaseEarlyClassifier, PartialPrediction
from repro.classifiers.ecdire import ECDIREClassifier
from repro.classifiers.ects import ECTSClassifier, RelaxedECTSClassifier
from repro.classifiers.full import FixedTruncationClassifier, FullLengthClassifier
from repro.classifiers.teaser import TEASERClassifier
from repro.classifiers.threshold import ProbabilityThresholdClassifier
from repro.evaluation.earliness import evaluate_early_classifier

TOLERANCE = 1e-10

METRIC_FIELDS = (
    "accuracy",
    "earliness",
    "harmonic_mean",
    "trigger_rate",
    "mean_trigger_length",
    "n_exemplars",
)

#: Classifier factories with a vectorised ``_batch_partial_evaluators``.
BATCHED_CLASSIFIERS = {
    "ects": lambda: ECTSClassifier(min_support=0.0),
    "relaxed-ects": lambda: RelaxedECTSClassifier(min_support=0.0),
    "teaser": lambda: TEASERClassifier(n_checkpoints=8),
    "threshold": lambda: ProbabilityThresholdClassifier(threshold=0.8, min_length=5),
    "full-length": lambda: FullLengthClassifier(),
    "fixed-truncation": lambda: FixedTruncationClassifier(),
}


def _assert_outcomes_match(batched, reference):
    assert len(batched) == len(reference)
    for got, want in zip(batched, reference):
        assert got.label == want.label
        assert got.trigger_length == want.trigger_length
        assert got.series_length == want.series_length
        assert got.triggered == want.triggered
        assert abs(got.confidence - want.confidence) <= TOLERANCE


class TestPredictEarlyBatchEquivalence:
    @pytest.mark.parametrize("name", sorted(BATCHED_CLASSIFIERS))
    @pytest.mark.parametrize("znorm", ["znormalized", "raw"])
    def test_outcomes_match_per_row_reference(
        self, name, znorm, gunpoint_small, gunpoint_small_raw
    ):
        train, test = gunpoint_small if znorm == "znormalized" else gunpoint_small_raw
        model = BATCHED_CLASSIFIERS[name]().fit(train.series, train.labels)
        assert model._batch_partial_evaluators(test.series) is not None
        batched = model.predict_early_batch(test.series)
        reference = [model.predict_early(row) for row in test.series]
        _assert_outcomes_match(batched, reference)

    @pytest.mark.parametrize("name", sorted(BATCHED_CLASSIFIERS))
    def test_metrics_match_per_row_reference(self, name, gunpoint_small):
        train, test = gunpoint_small
        model = BATCHED_CLASSIFIERS[name]().fit(train.series, train.labels)
        fast = evaluate_early_classifier(model, test.series, test.labels, batch=True)
        slow = evaluate_early_classifier(model, test.series, test.labels, batch=False)
        for field in METRIC_FIELDS:
            assert abs(getattr(fast, field) - getattr(slow, field)) <= TOLERANCE, field

    def test_batch_size_chunking_is_invisible(self, gunpoint_small):
        train, test = gunpoint_small
        model = ECTSClassifier().fit(train.series, train.labels)
        whole = model.predict_early_batch(test.series)
        chunked = model.predict_early_batch(test.series, batch_size=3)
        _assert_outcomes_match(chunked, whole)

    def test_keep_history_matches_per_row(self, gunpoint_small):
        train, test = gunpoint_small
        model = ProbabilityThresholdClassifier(min_length=5).fit(train.series, train.labels)
        batched = model.predict_early_batch(test.series[:6], keep_history=True)
        for got, row in zip(batched, test.series[:6]):
            want = model.predict_early(row, keep_history=True)
            assert len(got.history) == len(want.history)
            for g, w in zip(got.history, want.history):
                assert g.label == w.label
                assert g.ready == w.ready
                assert g.prefix_length == w.prefix_length
                assert abs(g.confidence - w.confidence) <= TOLERANCE

    def test_fallback_path_without_override(self, gunpoint_small):
        """Classifiers without a batched override ride the per-row reference."""
        train, test = gunpoint_small
        model = ECDIREClassifier(n_checkpoints=6).fit(train.series, train.labels)
        assert model._batch_partial_evaluators(test.series) is None
        batched = model.predict_early_batch(test.series[:8])
        reference = [model.predict_early(row) for row in test.series[:8]]
        _assert_outcomes_match(batched, reference)

    def test_predict_and_scores_ride_the_batched_path(self, gunpoint_small):
        train, test = gunpoint_small
        model = ECTSClassifier().fit(train.series, train.labels)
        reference = [model.predict_early(row) for row in test.series]
        assert np.array_equal(
            model.predict(test.series), np.asarray([o.label for o in reference])
        )
        assert model.average_earliness(test.series) == pytest.approx(
            float(np.mean([o.earliness for o in reference])), abs=TOLERANCE
        )


class TestPredictEarlyBatchValidation:
    def test_empty_batch_returns_empty_list(self, gunpoint_small):
        train, _ = gunpoint_small
        model = ECTSClassifier().fit(train.series, train.labels)
        assert model.predict_early_batch(np.empty((0, train.series_length))) == []

    def test_single_series_promoted_to_batch_of_one(self, gunpoint_small):
        train, test = gunpoint_small
        model = ECTSClassifier().fit(train.series, train.labels)
        outcomes = model.predict_early_batch(test.series[0])
        _assert_outcomes_match(outcomes, [model.predict_early(test.series[0])])

    def test_rejects_unfitted_and_bad_input(self, gunpoint_small):
        train, test = gunpoint_small
        with pytest.raises(RuntimeError):
            ECTSClassifier().predict_early_batch(test.series)
        model = ECTSClassifier().fit(train.series, train.labels)
        with pytest.raises(ValueError):
            model.predict_early_batch(test.series[:, :0])
        with pytest.raises(ValueError):
            model.predict_early_batch(np.zeros((2, train.series_length + 1)))
        with pytest.raises(ValueError):
            model.predict_early_batch(np.full((2, train.series_length), np.nan))
        with pytest.raises(ValueError):
            model.predict_early_batch(test.series, batch_size=0)

    def test_too_short_batch_raises_like_per_row(self, gunpoint_small):
        train, test = gunpoint_small
        model = FixedTruncationClassifier(
            trigger_length=train.series_length
        ).fit(train.series, train.labels)
        short = test.series[:, : train.series_length // 2]
        with pytest.raises(ValueError):
            model.predict_early_batch(short)
        with pytest.raises(ValueError):
            model.predict_early(short[0])


class _NeverReady(BaseEarlyClassifier):
    """Minimal early classifier whose stopping rule never fires."""

    def fit(self, series, labels):
        data, label_arr = self._validate_training_data(series, labels)
        self._store_training_shape(data, label_arr)
        return self

    def predict_partial(self, prefix):
        arr = self._validate_prefix(prefix)
        return PartialPrediction(
            label=self.classes_[0], ready=False, confidence=0.0, prefix_length=arr.shape[0]
        )


class TestTriggerlessBatch:
    def test_never_triggering_classifier_agrees(self, gunpoint_small):
        train, test = gunpoint_small
        model = _NeverReady().fit(train.series, train.labels)
        batched = model.predict_early_batch(test.series)
        reference = [model.predict_early(row) for row in test.series]
        _assert_outcomes_match(batched, reference)
        assert all(not outcome.triggered for outcome in batched)
        assert all(
            outcome.trigger_length == test.series_length for outcome in batched
        )
