"""Unit tests for repro.distance.neighbors."""

import numpy as np
import pytest

from repro.distance.dtw import dtw_distance
from repro.distance.neighbors import KNeighborsTimeSeriesClassifier


class TestFitValidation:
    def test_rejects_1d_training_data(self, tiny_two_class):
        series, labels = tiny_two_class
        with pytest.raises(ValueError):
            KNeighborsTimeSeriesClassifier().fit(series[0], labels[:1])

    def test_rejects_label_mismatch(self, tiny_two_class):
        series, labels = tiny_two_class
        with pytest.raises(ValueError):
            KNeighborsTimeSeriesClassifier().fit(series, labels[:-1])

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNeighborsTimeSeriesClassifier(n_neighbors=0)

    def test_query_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsTimeSeriesClassifier().predict(np.zeros(5))


class TestPrediction:
    def test_separable_problem_perfect_accuracy(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) == 1.0

    def test_training_points_classified_as_themselves(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        assert np.array_equal(model.predict(series), labels)

    def test_classes_property(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        assert model.classes_ == ("down", "up")

    def test_query_returns_neighbor_metadata(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=3).fit(series, labels)
        result = model.query(series[0])
        assert len(result.neighbor_indices) == 3
        assert len(result.neighbor_distances) == 3
        assert result.neighbor_distances[0] <= result.neighbor_distances[1]
        assert result.neighbor_indices[0] == 0  # itself

    def test_probabilities_sum_to_one(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=5).fit(series, labels)
        probabilities = model.predict_proba(series[:3])
        for row in probabilities:
            assert sum(row.values()) == pytest.approx(1.0)

    def test_query_length_mismatch_raises(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        with pytest.raises(ValueError):
            model.predict(np.zeros(series.shape[1] + 3))

    def test_znormalize_inputs_makes_offset_irrelevant(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(znormalize_inputs=True).fit(series, labels)
        shifted = series[1::2] + 50.0
        assert model.score(shifted, labels[1::2]) == 1.0

    def test_custom_metric_callable(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(metric=dtw_distance).fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) == 1.0

    def test_unknown_metric_string_raises(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(metric="manhattan").fit(series, labels)
        with pytest.raises(ValueError):
            model.query(series[0])

    def test_score_label_mismatch_raises(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        with pytest.raises(ValueError):
            model.score(series, labels[:-2])


class TestGunPointAccuracy:
    def test_realistic_accuracy_band(self, gunpoint_medium):
        train, test = gunpoint_medium
        model = KNeighborsTimeSeriesClassifier().fit(train.series, train.labels)
        accuracy = model.score(test.series, test.labels)
        # The generator is tuned so that 1-NN on the full 25/75 split lands in
        # the low 90s like the real GunPoint; on this reduced split we only
        # require that the problem is clearly learnable but not trivial.
        assert 0.75 <= accuracy <= 1.0
