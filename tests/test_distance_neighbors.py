"""Unit tests for repro.distance.neighbors."""

import numpy as np
import pytest

from repro.distance.dtw import dtw_distance
from repro.distance.neighbors import KNeighborsTimeSeriesClassifier


class TestFitValidation:
    def test_rejects_1d_training_data(self, tiny_two_class):
        series, labels = tiny_two_class
        with pytest.raises(ValueError):
            KNeighborsTimeSeriesClassifier().fit(series[0], labels[:1])

    def test_rejects_label_mismatch(self, tiny_two_class):
        series, labels = tiny_two_class
        with pytest.raises(ValueError):
            KNeighborsTimeSeriesClassifier().fit(series, labels[:-1])

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNeighborsTimeSeriesClassifier(n_neighbors=0)

    def test_query_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsTimeSeriesClassifier().predict(np.zeros(5))


class TestPrediction:
    def test_separable_problem_perfect_accuracy(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) == 1.0

    def test_training_points_classified_as_themselves(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        assert np.array_equal(model.predict(series), labels)

    def test_classes_property(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        assert model.classes_ == ("down", "up")

    def test_query_returns_neighbor_metadata(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=3).fit(series, labels)
        result = model.query(series[0])
        assert len(result.neighbor_indices) == 3
        assert len(result.neighbor_distances) == 3
        assert result.neighbor_distances[0] <= result.neighbor_distances[1]
        assert result.neighbor_indices[0] == 0  # itself

    def test_probabilities_sum_to_one(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=5).fit(series, labels)
        probabilities = model.predict_proba(series[:3])
        for row in probabilities:
            assert sum(row.values()) == pytest.approx(1.0)

    def test_query_length_mismatch_raises(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        with pytest.raises(ValueError):
            model.predict(np.zeros(series.shape[1] + 3))

    def test_znormalize_inputs_makes_offset_irrelevant(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(znormalize_inputs=True).fit(series, labels)
        shifted = series[1::2] + 50.0
        assert model.score(shifted, labels[1::2]) == 1.0

    def test_custom_metric_callable(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(metric=dtw_distance).fit(series[::2], labels[::2])
        assert model.score(series[1::2], labels[1::2]) == 1.0

    def test_unknown_metric_string_raises(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(metric="manhattan").fit(series, labels)
        with pytest.raises(ValueError):
            model.query(series[0])

    def test_score_label_mismatch_raises(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        with pytest.raises(ValueError):
            model.score(series, labels[:-2])


class TestTieBreaking:
    """Exact distance ties must resolve to the lowest training index on every path."""

    @pytest.fixture
    def duplicated_training(self):
        # Integer-valued, UCR-style data with exact duplicates carrying
        # different labels: index 0 and 2 are identical, as are 1 and 3.
        series = np.asarray(
            [
                [0.0, 1.0, 2.0, 3.0],
                [3.0, 2.0, 1.0, 0.0],
                [0.0, 1.0, 2.0, 3.0],
                [3.0, 2.0, 1.0, 0.0],
                [1.0, 1.0, 1.0, 2.0],
            ]
        )
        labels = np.asarray(["a", "b", "c", "d", "a"])
        return series, labels

    def test_query_and_predict_agree_on_ties(self, duplicated_training):
        series, labels = duplicated_training
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        queries = series[:4]
        predicted = model.predict(queries)
        per_query = np.asarray([model.query(q).label for q in queries])
        assert np.array_equal(predicted, per_query)
        # Lowest-index convention: the duplicates at indices 2/3 must map to
        # the labels of their lower-index twins 0/1.
        assert predicted.tolist() == ["a", "b", "a", "b"]

    def test_query_reports_lowest_index_neighbour(self, duplicated_training):
        series, labels = duplicated_training
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        assert model.query(series[2]).neighbor_indices[0] == 0
        assert model.query(series[3]).neighbor_indices[0] == 1

    def test_predict_prefixes_agrees_on_ties(self, duplicated_training):
        series, labels = duplicated_training
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        predicted = model.predict_prefixes(series[:4], [2, 4])
        for row in predicted:
            assert row.tolist() == ["a", "b", "a", "b"]

    def test_k3_stable_neighbour_order_on_ties(self, duplicated_training):
        series, labels = duplicated_training
        model = KNeighborsTimeSeriesClassifier(n_neighbors=3).fit(series, labels)
        # Ties between the two exact matches (0 and 2) keep index order.
        assert model.query(series[0]).neighbor_indices[:2] == (0, 2)


class TestVectorisedVote:
    """predict answers k > 1 from the one distance matrix, matching query."""

    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("znorm", [False, True])
    def test_predict_matches_per_query_path(self, tiny_two_class, k, znorm):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=k, znormalize_inputs=znorm).fit(
            series[::2], labels[::2]
        )
        queries = series[1::2]
        predicted = model.predict(queries)
        per_query = np.asarray([model.query(q).label for q in queries])
        assert np.array_equal(predicted, per_query)

    @pytest.mark.parametrize("k", [1, 3])
    def test_prefix_sweep_streaming_fallback_matches_stacked(self, tiny_two_class, k):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=k).fit(series[::2], labels[::2])
        queries = series[1::2]
        lengths = list(range(1, series.shape[1] + 1))
        stacked = model.predict_prefixes(queries, lengths)
        # A one-matrix budget forces the incremental streaming path.
        model.max_prefix_sweep_bytes = queries.shape[0] * series[::2].shape[0] * 8
        streamed = model.predict_prefixes(queries, lengths)
        assert np.array_equal(stacked, streamed)

    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("znorm", [False, True])
    def test_full_length_prefix_matches_predict(self, tiny_two_class, k, znorm):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=k, znormalize_inputs=znorm).fit(
            series[::2], labels[::2]
        )
        queries = series[1::2]
        by_prefix = model.predict_prefixes(queries, [series.shape[1]])[0]
        assert np.array_equal(by_prefix, model.predict(queries))


class TestZeroDistanceVote:
    """An exact-match neighbour deterministically dominates the soft vote."""

    def test_exact_match_takes_all_probability_mass(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=5).fit(series, labels)
        result = model.query(series[0])
        assert result.neighbor_distances[0] == 0.0
        assert result.probabilities[labels[0]] == 1.0
        assert result.label == labels[0]

    def test_tied_exact_matches_split_mass_uniformly(self):
        series = np.asarray(
            [[0.0, 1.0, 0.0], [0.0, 1.0, 0.0], [5.0, 5.0, 5.0], [9.0, 9.0, 9.0]]
        )
        labels = np.asarray(["a", "b", "a", "b"])
        model = KNeighborsTimeSeriesClassifier(n_neighbors=4).fit(series, labels)
        result = model.query(series[0])
        # Both zero-distance neighbours share the mass; the non-matching
        # neighbours contribute nothing, regardless of any epsilon.
        assert result.probabilities["a"] == pytest.approx(0.5)
        assert result.probabilities["b"] == pytest.approx(0.5)

    def test_all_infinite_distances_fall_back_to_uniform_vote(self):
        series = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        labels = np.asarray(["a", "b"])
        model = KNeighborsTimeSeriesClassifier(
            n_neighbors=2, metric=lambda a, b: float("inf")
        ).fit(series, labels)
        result = model.query(series[0])
        assert result.probabilities["a"] == pytest.approx(0.5)
        assert result.probabilities["b"] == pytest.approx(0.5)

    def test_near_zero_distances_do_not_depend_on_magic_epsilon(self):
        # A neighbour at distance ~1e-8 used to be weighted 1/(d + 1e-9),
        # letting the smoothing constant rival the signal.  With the
        # convention tied to znorm.EPSILON the closer neighbour wins the
        # vote outright.
        base = np.asarray([0.0, 1.0, 0.0, 1.0])
        series = np.vstack([base + 1e-8, base + 1.0, base])
        labels = np.asarray(["close", "far", "query"])
        model = KNeighborsTimeSeriesClassifier(n_neighbors=2).fit(series[:2], labels[:2])
        result = model.query(base)
        assert result.label == "close"
        assert result.probabilities["close"] > 0.99


class TestGunPointAccuracy:
    def test_realistic_accuracy_band(self, gunpoint_medium):
        train, test = gunpoint_medium
        model = KNeighborsTimeSeriesClassifier().fit(train.series, train.labels)
        accuracy = model.score(test.series, test.labels)
        # The generator is tuned so that 1-NN on the full 25/75 split lands in
        # the low 90s like the real GunPoint; on this reduced split we only
        # require that the problem is clearly learnable but not trivial.
        assert 0.75 <= accuracy <= 1.0


class TestPredictProbaBatched:
    """predict_proba rides the same batched path as predict, by construction."""

    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("znorm", [False, True])
    def test_matches_per_query_probabilities(self, tiny_two_class, k, znorm):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=k, znormalize_inputs=znorm).fit(
            series[::2], labels[::2]
        )
        queries = series[1::2]
        batched = model.predict_proba(queries)
        looped = [model.query(q).probabilities for q in np.asarray(queries, dtype=float)]
        for fast, reference in zip(batched, looped):
            assert fast.keys() == reference.keys()
            for cls in fast:
                # The batched path shares predict's BLAS matrix; the old
                # per-query loop could differ from it in the last ulp.
                assert fast[cls] == pytest.approx(reference[cls], abs=1e-9)

    def test_argmax_agrees_with_predict(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(n_neighbors=3).fit(series[::2], labels[::2])
        queries = series[1::2]
        predicted = model.predict(queries)
        probas = model.predict_proba(queries)
        for label, proba in zip(predicted, probas):
            assert max(proba.items(), key=lambda item: item[1])[0] == label

    def test_single_1d_query_promoted(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier().fit(series, labels)
        probas = model.predict_proba(series[0])
        assert len(probas) == 1
        assert probas[0] == model.query(series[0]).probabilities

    def test_exact_ties_on_duplicated_training_rows(self):
        series = np.asarray(
            [[0.0, 1.0, 2.0, 3.0], [3.0, 2.0, 1.0, 0.0],
             [0.0, 1.0, 2.0, 3.0], [3.0, 2.0, 1.0, 0.0]]
        )
        labels = np.asarray(["a", "b", "a", "b"])
        model = KNeighborsTimeSeriesClassifier(n_neighbors=2).fit(series, labels)
        probas = model.predict_proba(series[:2])
        assert probas[0]["a"] == pytest.approx(1.0)
        assert probas[1]["b"] == pytest.approx(1.0)


class TestMaxPrefixSweepBytesParameter:
    def test_init_parameter_shadows_class_default(self, tiny_two_class):
        default = KNeighborsTimeSeriesClassifier.max_prefix_sweep_bytes
        model = KNeighborsTimeSeriesClassifier(max_prefix_sweep_bytes=4096)
        assert model.max_prefix_sweep_bytes == 4096
        # The class default -- and therefore every other instance -- is
        # untouched: the budget used to be a bare class attribute, so tuning
        # one model silently retuned all of them.
        assert KNeighborsTimeSeriesClassifier.max_prefix_sweep_bytes == default
        assert KNeighborsTimeSeriesClassifier().max_prefix_sweep_bytes == default

    def test_default_none_keeps_class_attribute(self):
        model = KNeighborsTimeSeriesClassifier()
        assert "max_prefix_sweep_bytes" not in vars(model)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            KNeighborsTimeSeriesClassifier(max_prefix_sweep_bytes=0)

    def test_budget_parameter_forces_streaming_fallback(self, tiny_two_class):
        series, labels = tiny_two_class
        train, queries = series[::2], series[1::2]
        lengths = list(range(1, series.shape[1] + 1))
        stacked = KNeighborsTimeSeriesClassifier().fit(train, labels[::2])
        tiny = KNeighborsTimeSeriesClassifier(
            max_prefix_sweep_bytes=queries.shape[0] * train.shape[0] * 8
        ).fit(train, labels[::2])
        assert np.array_equal(
            stacked.predict_prefixes(queries, lengths),
            tiny.predict_prefixes(queries, lengths),
        )


class TestDTWMetricString:
    def test_dtw_metric_matches_callable_dtw(self, tiny_two_class):
        series, labels = tiny_two_class
        fast = KNeighborsTimeSeriesClassifier(metric="dtw").fit(series[::2], labels[::2])
        slow = KNeighborsTimeSeriesClassifier(metric=dtw_distance).fit(
            series[::2], labels[::2]
        )
        queries = series[1::2]
        assert np.array_equal(fast.predict(queries), slow.predict(queries))

    def test_dtw_metric_window_parameter_is_used(self, tiny_two_class):
        series, labels = tiny_two_class
        banded = KNeighborsTimeSeriesClassifier(
            metric="dtw", metric_params={"window": 0}
        ).fit(series[::2], labels[::2])
        constrained = KNeighborsTimeSeriesClassifier(
            metric=lambda a, b: dtw_distance(a, b, window=0)
        ).fit(series[::2], labels[::2])
        queries = series[1::2]
        assert np.array_equal(banded.predict(queries), constrained.predict(queries))

    def test_dtw_metric_allows_shorter_queries(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(
            metric="dtw", metric_params={"window": None}
        ).fit(series, labels)
        short = series[:3, :-2]
        assert model.predict(short).shape == (3,)

    def test_dtw_metric_predict_prefixes(self, tiny_two_class):
        series, labels = tiny_two_class
        model = KNeighborsTimeSeriesClassifier(
            metric="dtw", metric_params={"window": 2}
        ).fit(series[::2], labels[::2])
        out = model.predict_prefixes(series[1::2], [3, series.shape[1]])
        assert out.shape == (2, series[1::2].shape[0])
