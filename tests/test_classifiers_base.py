"""Unit tests for the early-classifier base machinery."""

import numpy as np
import pytest

from repro.classifiers.base import (
    BaseEarlyClassifier,
    EarlyPrediction,
    PartialPrediction,
    default_checkpoints,
)


class TestDefaultCheckpoints:
    def test_ends_at_series_length(self):
        checkpoints = default_checkpoints(150, 20)
        assert checkpoints[-1] == 150

    def test_strictly_increasing(self):
        checkpoints = default_checkpoints(150, 20)
        assert all(b > a for a, b in zip(checkpoints, checkpoints[1:]))

    def test_count_close_to_requested(self):
        checkpoints = default_checkpoints(200, 20)
        assert 15 <= len(checkpoints) <= 21

    def test_min_length_respected(self):
        checkpoints = default_checkpoints(100, 10, min_length=30)
        assert checkpoints[0] >= 30

    def test_short_series(self):
        checkpoints = default_checkpoints(10, 20)
        assert checkpoints[-1] == 10

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            default_checkpoints(1, 5)
        with pytest.raises(ValueError):
            default_checkpoints(100, 0)
        with pytest.raises(ValueError):
            default_checkpoints(100, 10, min_length=200)


class _TriggerAtLength(BaseEarlyClassifier):
    """Minimal concrete early classifier used to exercise the base class."""

    def __init__(self, trigger_at: int) -> None:
        super().__init__()
        self.trigger_at = trigger_at

    def fit(self, series, labels):
        data, label_arr = self._validate_training_data(series, labels)
        self._store_training_shape(data, label_arr)
        return self

    def predict_partial(self, prefix):
        arr = self._validate_prefix(prefix)
        return PartialPrediction(
            label=self.classes_[0],
            ready=arr.shape[0] >= self.trigger_at,
            confidence=1.0,
            prefix_length=arr.shape[0],
        )


class TestBaseBehaviour:
    def _fitted(self, trigger_at=10, length=30):
        rng = np.random.default_rng(0)
        series = rng.standard_normal((6, length))
        labels = np.asarray(["a", "a", "a", "b", "b", "b"])
        return _TriggerAtLength(trigger_at).fit(series, labels)

    def test_unfitted_predict_raises(self):
        model = _TriggerAtLength(5)
        with pytest.raises(RuntimeError):
            model.predict_early(np.zeros(10))

    def test_fit_validations(self):
        model = _TriggerAtLength(5)
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            model.fit(rng.standard_normal((1, 10)), ["a"])
        with pytest.raises(ValueError):
            model.fit(rng.standard_normal((4, 10)), ["a", "a", "a", "a"])
        with pytest.raises(ValueError):
            model.fit(rng.standard_normal(10), ["a"])

    def test_predict_early_triggers_at_expected_length(self):
        model = self._fitted(trigger_at=12)
        outcome = model.predict_early(np.zeros(30))
        assert outcome.triggered
        assert outcome.trigger_length == 12
        assert outcome.earliness == pytest.approx(12 / 30)

    def test_predict_early_without_trigger_uses_full_length(self):
        model = self._fitted(trigger_at=99)
        outcome = model.predict_early(np.zeros(30))
        assert not outcome.triggered
        assert outcome.trigger_length == 30
        assert outcome.earliness == 1.0

    def test_history_recorded_when_requested(self):
        model = self._fitted(trigger_at=5)
        outcome = model.predict_early(np.zeros(30), keep_history=True)
        assert len(outcome.history) == 5
        assert all(isinstance(p, PartialPrediction) for p in outcome.history)

    def test_history_empty_by_default(self):
        model = self._fitted(trigger_at=5)
        outcome = model.predict_early(np.zeros(30))
        assert outcome.history == ()

    def test_prefix_longer_than_training_rejected(self):
        model = self._fitted()
        with pytest.raises(ValueError):
            model.predict_early(np.zeros(31))

    def test_prefix_with_nan_rejected(self):
        model = self._fitted()
        bad = np.zeros(30)
        bad[3] = np.nan
        with pytest.raises(ValueError):
            model.predict_early(bad)

    def test_predict_over_matrix(self):
        model = self._fitted(trigger_at=3)
        predictions = model.predict(np.zeros((4, 30)))
        assert predictions.shape == (4,)

    def test_score_and_earliness(self):
        model = self._fitted(trigger_at=6)
        series = np.zeros((4, 30))
        labels = np.asarray(["a", "a", "b", "b"])
        assert model.score(series, labels) == pytest.approx(0.5)
        assert model.average_earliness(series) == pytest.approx(6 / 30)

    def test_classes_property(self):
        model = self._fitted()
        assert model.classes_ == ("a", "b")
        assert model.train_length_ == 30


class TestEarlyPredictionDataclass:
    def test_earliness_property(self):
        prediction = EarlyPrediction(
            label="a", trigger_length=30, series_length=120, triggered=True, confidence=0.9
        )
        assert prediction.earliness == pytest.approx(0.25)
