# Convenience targets for the reproduction.  Everything works from a clean
# checkout with no installation: PYTHONPATH=src is injected here, and is
# harmless if the package has been `pip install -e .`ed instead.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-report batch-check fit-check serve-check dist-check compiled-check sweep-check mv-check docs-check quickstart experiments results check-artifacts all

## tier-1 gate: unit/property/integration tests + benchmark harness
test:
	$(PYTHON) -m pytest -x -q

## benchmarks only (one per paper artefact, plus the prefix-engine and
## batched-prediction speedups); every test_bench_<name>.py module also
## writes a machine-readable results/bench/BENCH_<name>.json record
## (wall times, explicit metrics, git SHA, resolved distance backend)
bench:
	$(PYTHON) -m pytest benchmarks -q
	$(PYTHON) tools/bench_record.py

## summarise the benchmark records already on disk without re-running
bench-report:
	$(PYTHON) tools/bench_record.py

## batched-inference drift gate: batch-vs-per-row equivalence suite plus the
## >= 5x full-test-set speedup benchmark (run by CI on every push)
batch-check:
	$(PYTHON) -m pytest tests/test_batch_predict.py benchmarks/test_bench_batch_predict.py -q

## training-engine drift gate: fit-kernel equivalence suite (exact ECTS
## MPLs/supports, exact EDSC shapelet selection, bit-identical DTW wavefront)
## plus the >= 5x fit speedup benchmarks (run by CI on every push)
fit-check:
	$(PYTHON) -m pytest tests/test_training_kernels.py benchmarks/test_bench_fit.py -q

## serving-layer drift gate: the multi-tenant engine's batched alarms must
## stay identical to dedicated per-stream sessions (equivalence + fuzz +
## shedding suites) and keep its >= 5x fleet throughput over sequential
## sessions (run by CI on every push)
serve-check:
	$(PYTHON) -m pytest tests/test_serving.py benchmarks/test_bench_serving.py -q

## distance-backend drift gate: the pruned UCR-suite cascade (LB_Kim ->
## LB_Keogh -> early-abandoning banded DP) must stay bit-identical to the
## dense reference wavefront across band specs, unequal lengths and k, and
## keep its >= 5x win on the Table-1-scale DTW 1-NN benchmark (run by CI on
## every push)
dist-check:
	$(PYTHON) -m pytest tests/test_distance_backends.py tests/test_compiled_backend.py benchmarks/test_bench_dtw_prune.py benchmarks/test_bench_compiled.py -q

## compiled-tier drift gate: the same distance gate with the numba-JIT
## backend requested process-wide; with numba installed the compiled cascade
## must stay bit-identical to the reference and >= 5x faster than the pruned
## numpy cascade, without numba it must fall back to "pruned" transparently
## (run by CI in both configurations)
compiled-check:
	REPRO_BACKEND=compiled $(PYTHON) -m pytest tests/test_distance_backends.py tests/test_compiled_backend.py benchmarks/test_bench_dtw_prune.py benchmarks/test_bench_compiled.py -q

## out-of-core/resume drift gate: memory-budget chunking must stay
## bit-identical, the sharded format must round-trip + verify, the work-queue
## scheduler must survive worker death, and the 104-dataset sweep benchmark
## must hold its peak-RSS cap and >= 5x warm-resume speedup (run by CI on
## every push)
sweep-check:
	$(PYTHON) -m pytest tests/test_memory.py tests/test_data_shards.py tests/test_runtime_sweep.py benchmarks/test_bench_sweep.py -q

## multichannel drift gate: (n, L, 1) tensors must stay bit-identical to the
## legacy (n, L) layout (so every d=1 golden summary is byte-stable), every
## d > 1 kernel must match its naive per-channel Python-loop reference to
## <= 1e-10 under both DTW backends, and the vectorised channel-summed
## kernel must keep its >= 5x win over the per-channel loop on the 6-axis
## Table-1-scale fit/predict workload (run by CI on every push)
mv-check:
	$(PYTHON) -m pytest tests/test_multichannel.py tests/test_experiments_golden.py benchmarks/test_bench_multichannel.py -q

## fail if README/ARCHITECTURE reference modules or files that don't exist
docs-check:
	$(PYTHON) tools/docs_check.py

quickstart:
	$(PYTHON) examples/quickstart.py

## regenerate every paper artefact at reduced scale
experiments:
	$(PYTHON) -m repro.experiments --fast

## regenerate every artefact in parallel and write results/<name>.json
results:
	$(PYTHON) -m repro.experiments --fast --jobs 2 --json

## fail unless every results/*.json artifact parses with non-empty metrics
check-artifacts:
	$(PYTHON) tools/check_artifacts.py results

all: test docs-check
